"""Demo lowerings: one representative access program per subsystem.

Every subsystem that lowers onto the access-program pipeline — the five
kernels, the PRF machine, the schedule executor and the STREAM
controller — registers its lowering as a :mod:`repro.program.builder`
spec.  This module collects one small, deterministic instance of each
under a stable name, for the CLI's ``program dump`` subcommand and for
cross-subsystem tests.

Kept out of :mod:`repro.program`'s public namespace on purpose: the
demos import the kernels (which import the package), so they load
lazily, on first use.
"""

from __future__ import annotations

import numpy as np

from .ir import AccessProgram

__all__ = ["DEMO_NAMES", "lower_demo"]


def _matmul():
    from .builder import build

    a = np.arange(8 * 8, dtype=np.uint64).reshape(8, 8)
    b = (np.arange(8 * 8, dtype=np.uint64) % 7).reshape(8, 8)
    built = build("kernel.matmul", a=a, b=b, p=2, q=4)
    return built.program, built.mems


def _stencil():
    from .builder import build

    image = np.arange(8 * 8, dtype=np.int64).reshape(8, 8)
    weights = np.ones((3, 3), dtype=np.int64)
    built = build("kernel.stencil", image=image, weights=weights, p=2, q=4)
    return built.program, built.mems


def _jacobi():
    from .builder import build

    grid = np.linspace(0.0, 1.0, 8 * 8).reshape(8, 8)
    built = build("kernel.jacobi", grid=grid, iterations=2, p=2, q=4)
    return built.program, built.mems


def _transpose():
    from .builder import build

    matrix = np.arange(8 * 8, dtype=np.uint64).reshape(8, 8)
    built = build("kernel.transpose", matrix=matrix, p=2, q=4)
    return built.program, built.mems


def _reduce(direction: str):
    from ..kernels.reduction import load_matrix
    from .builder import build

    pm = load_matrix(np.arange(8 * 8, dtype=np.uint64).reshape(8, 8))
    spec = "kernel.reduce_rows" if direction == "rows" else "kernel.reduce_columns"
    built = build(spec, pm=pm)
    return built.program, built.mems


def _prf_vadd():
    from ..prf.machine import PrfMachine
    from ..prf.registers import RegisterFile
    from .builder import build

    rf = RegisterFile(capacity_kb=4)
    machine = PrfMachine(rf)
    ra = rf.define("R0", 4, 8)
    rb = rf.define("R1", 4, 8)
    ra.store(np.arange(32, dtype=np.float64).reshape(4, 8))
    rb.store(np.ones((4, 8)))
    built = build("prf.operands", machine=machine, regs=(ra, rb))
    return built.program, built.mems


def _schedule():
    from ..schedule import customize, transpose_trace
    from ..schedule.executor import memory_for_trace
    from .builder import build

    trace = transpose_trace(8, 8)
    best = customize(trace, lane_grids=[(2, 4)], solver="greedy").best
    pm, _ = memory_for_trace(trace, best)
    built = build("schedule.accesses", schedule=best, memory=pm)
    return built.program, built.mems


def _stream_copy():
    from ..core.config import PolyMemConfig
    from ..core.schemes import Scheme
    from ..stream_bench.controller import Job, Mode, StreamController
    from .builder import build

    config = PolyMemConfig(
        12 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
        rows=12, cols=32,
    )
    controller = StreamController("controller", config)
    # describe-only: the write stream's values arrive over wr_data at
    # simulation time, so this program documents the access shape only
    built = build("stream.job", controller=controller, job=Job(Mode.COPY, vectors=8))
    return built.program, built.mems


_DEMOS = {
    "matmul": _matmul,
    "stencil": _stencil,
    "jacobi": _jacobi,
    "transpose": _transpose,
    "reduce_rows": lambda: _reduce("rows"),
    "reduce_columns": lambda: _reduce("columns"),
    "prf_vadd": _prf_vadd,
    "schedule": _schedule,
    "stream_copy": _stream_copy,
}

DEMO_NAMES = tuple(_DEMOS)


def lower_demo(name: str) -> tuple[AccessProgram, dict]:
    """Build the named demo; returns ``(program, mems)``.

    *mems* maps the program's memory names to live PolyMems, empty for
    describe-only programs (whose writes carry no values).
    """
    from .ir import ProgramError

    if name not in _DEMOS:
        raise ProgramError(
            f"unknown demo {name!r} (use one of {', '.join(DEMO_NAMES)})"
        )
    built = _DEMOS[name]()
    program, mem = built if isinstance(built, tuple) else (built, None)
    if mem is None:
        return program, {}
    if not isinstance(mem, dict):
        return program, {"default": mem}
    return program, mem
