"""Demo lowerings: one representative access program per subsystem.

Every caller of the access-program pipeline — the five kernels, the PRF
machine, the schedule executor and the STREAM controller — exposes its
lowering as a ``*_program`` function.  This module collects one small,
deterministic instance of each under a stable name, for the CLI's
``program dump`` subcommand and for cross-subsystem tests.

Kept out of :mod:`repro.program`'s public namespace on purpose: the
demos import the kernels (which import the package), so they load
lazily, on first use.
"""

from __future__ import annotations

import numpy as np

from .ir import AccessProgram

__all__ = ["DEMO_NAMES", "lower_demo"]


def _matmul():
    from ..kernels.matmul import matmul_program

    a = np.arange(8 * 8, dtype=np.uint64).reshape(8, 8)
    b = (np.arange(8 * 8, dtype=np.uint64) % 7).reshape(8, 8)
    return matmul_program(a, b, p=2, q=4)


def _stencil():
    from ..kernels.stencil import stencil_program

    image = np.arange(8 * 8, dtype=np.int64).reshape(8, 8)
    weights = np.ones((3, 3), dtype=np.int64)
    return stencil_program(image, weights, p=2, q=4)


def _jacobi():
    from ..kernels.jacobi import jacobi_program

    grid = np.linspace(0.0, 1.0, 8 * 8).reshape(8, 8)
    return jacobi_program(grid, iterations=2, p=2, q=4)


def _transpose():
    from ..kernels.transpose import transpose_program

    matrix = np.arange(8 * 8, dtype=np.uint64).reshape(8, 8)
    return transpose_program(matrix, p=2, q=4)


def _reduce(direction: str):
    from ..kernels.reduction import (
        load_matrix,
        reduce_columns_program,
        reduce_rows_program,
    )

    pm = load_matrix(np.arange(8 * 8, dtype=np.uint64).reshape(8, 8))
    builder = (
        reduce_rows_program if direction == "rows" else reduce_columns_program
    )
    return builder(pm), pm


def _prf_vadd():
    from ..prf.machine import PrfMachine
    from ..prf.registers import RegisterFile

    rf = RegisterFile(capacity_kb=4)
    machine = PrfMachine(rf)
    ra = rf.define("R0", 4, 8)
    rb = rf.define("R1", 4, 8)
    ra.store(np.arange(32, dtype=np.float64).reshape(4, 8))
    rb.store(np.ones((4, 8)))
    return machine._operand_program(ra, rb), rf.memory


def _schedule():
    from ..schedule import customize, transpose_trace
    from ..schedule.executor import memory_for_trace, schedule_program

    trace = transpose_trace(8, 8)
    best = customize(trace, lane_grids=[(2, 4)], solver="greedy").best
    pm, _ = memory_for_trace(trace, best)
    return schedule_program(best), pm


def _stream_copy():
    from ..core.config import PolyMemConfig
    from ..core.schemes import Scheme
    from ..stream_bench.controller import Job, Mode, StreamController

    config = PolyMemConfig(
        12 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
        rows=12, cols=32,
    )
    controller = StreamController("controller", config)
    # describe-only: the write stream's values arrive over wr_data at
    # simulation time, so this program documents the access shape only
    return controller.job_program(Job(Mode.COPY, vectors=8)), None


_DEMOS = {
    "matmul": _matmul,
    "stencil": _stencil,
    "jacobi": _jacobi,
    "transpose": _transpose,
    "reduce_rows": lambda: _reduce("rows"),
    "reduce_columns": lambda: _reduce("columns"),
    "prf_vadd": _prf_vadd,
    "schedule": _schedule,
    "stream_copy": _stream_copy,
}

DEMO_NAMES = tuple(_DEMOS)


def lower_demo(name: str) -> tuple[AccessProgram, dict]:
    """Build the named demo; returns ``(program, mems)``.

    *mems* maps the program's memory names to live PolyMems, empty for
    describe-only programs (whose writes carry no values).
    """
    from .ir import ProgramError

    if name not in _DEMOS:
        raise ProgramError(
            f"unknown demo {name!r} (use one of {', '.join(DEMO_NAMES)})"
        )
    built = _DEMOS[name]()
    program, mem = built if isinstance(built, tuple) else (built, None)
    if mem is None:
        return program, {}
    if not isinstance(mem, dict):
        return program, {"default": mem}
    return program, mem
