"""The four STREAM applications (McCalpin) on PolyMem arrays.

The paper implements and measures Copy; Scale, Sum and Triad are declared
as future work (§VII) and are implemented here as the natural extension —
they exercise the second read port (Sum/Triad read two arrays per cycle).

Each :class:`StreamApp` declares its dataflow (source arrays, destination,
combine function), its memory-traffic accounting (bytes moved per element,
following the standard STREAM convention), and a NumPy reference for
verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .controller import Mode

__all__ = ["StreamApp", "COPY", "SCALE", "SUM", "TRIAD", "all_apps"]

#: STREAM's traditional scalar constant
DEFAULT_SCALAR = 3.0


@dataclass(frozen=True)
class StreamApp:
    """One STREAM application."""

    name: str
    mode: Mode
    #: source array indices (0=A, 1=B, 2=C) — one read port per source
    sources: tuple[int, ...]
    #: destination array index
    destination: int
    #: floating-point operations per element
    flops_per_element: int
    #: the reference computation over float64 arrays
    reference: Callable[..., np.ndarray]
    formula: str

    @property
    def reads_per_element(self) -> int:
        return len(self.sources)

    @property
    def writes_per_element(self) -> int:
        return 1

    @property
    def bytes_per_element(self) -> int:
        """STREAM-convention traffic: 8 B per read + 8 B per write."""
        return 8 * (self.reads_per_element + self.writes_per_element)

    @property
    def read_ports_needed(self) -> int:
        return len(self.sources)

    def expected(self, a: np.ndarray, b: np.ndarray, c: np.ndarray, scalar: float):
        """The destination array contents after one application."""
        return self.reference(a=a, b=b, c=c, q=scalar)


COPY = StreamApp(
    name="Copy",
    mode=Mode.COPY,
    sources=(0,),
    destination=2,
    flops_per_element=0,
    reference=lambda a, b, c, q: a.copy(),
    formula="c(i) = a(i)",
)

SCALE = StreamApp(
    name="Scale",
    mode=Mode.SCALE,
    sources=(1,),
    destination=0,
    flops_per_element=1,
    reference=lambda a, b, c, q: q * b,
    formula="a(i) = q * b(i)",
)

SUM = StreamApp(
    name="Sum",
    mode=Mode.SUM,
    sources=(1, 2),
    destination=0,
    flops_per_element=1,
    reference=lambda a, b, c, q: b + c,
    formula="a(i) = b(i) + c(i)",
)

TRIAD = StreamApp(
    name="Triad",
    mode=Mode.TRIAD,
    sources=(1, 2),
    destination=0,
    flops_per_element=2,
    reference=lambda a, b, c, q: b + q * c,
    formula="a(i) = b(i) + q * c(i)",
)


def all_apps() -> tuple[StreamApp, ...]:
    """Copy, Scale, Sum, Triad — STREAM's canonical order."""
    return (COPY, SCALE, SUM, TRIAD)
