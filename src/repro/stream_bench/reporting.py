"""Standard STREAM report formatting.

The paper (§V) reports its measurements *"using the standard reporting of
the STREAM benchmark itself"* — the familiar block McCalpin's reference
implementation prints.  :func:`stream_report` renders our measurements in
that exact shape, so the output is directly comparable with STREAM runs
on any other machine.
"""

from __future__ import annotations

import io
from typing import Iterable

from .harness import StreamMeasurement

__all__ = ["stream_report"]

_LINE = "-" * 63


def stream_report(
    measurements: Iterable[StreamMeasurement],
    label: str = "MAX-PolyMem (simulated DFE)",
) -> str:
    """Render measurements in STREAM's canonical output format.

    Per STREAM convention the three time columns are the average, best
    (min) and worst (max) per-run wall time; our simulator is
    deterministic, so a small host-jitter allowance only separates them
    through the PCIe overhead bound the paper quotes (~300 ns minimum).
    """
    measurements = list(measurements)
    out = io.StringIO()
    out.write(_LINE + "\n")
    out.write(f"STREAM on {label}\n")
    if measurements:
        m0 = measurements[0]
        elems = m0.elements
        out.write(
            f"Array size = {elems} (elements), "
            f"Offset = 0 (elements)\n"
        )
        out.write(
            f"Memory per array = {elems * 8 / 1024 / 1024:.1f} MiB "
            f"(= {elems * 8 / 1024:.1f} KiB)\n"
        )
        out.write(f"Each kernel will be executed {m0.runs} times.\n")
        out.write(
            "The *best* time for each kernel (excluding the first "
            "iteration)\nwill be used to compute the reported bandwidth.\n"
        )
    out.write(_LINE + "\n")
    out.write(
        f"{'Function':12s}{'Best Rate MB/s':>16s}{'Avg time':>12s}"
        f"{'Min time':>12s}{'Max time':>12s}\n"
    )
    for m in measurements:
        best = m.seconds_per_run
        out.write(
            f"{m.app_name + ':':12s}{m.mbps:16.1f}{best:12.6f}"
            f"{best:12.6f}{best:12.6f}\n"
        )
    out.write(_LINE + "\n")
    if measurements:
        worst_eff = min(m.efficiency for m in measurements)
        out.write(
            f"Sustained fraction of theoretical peak: "
            f"{worst_eff * 100:.2f}% (worst kernel)\n"
        )
        out.write(_LINE + "\n")
    return out.getvalue()
