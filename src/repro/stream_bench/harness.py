"""The STREAM measurement harness: Load / compute / Offload (paper §V).

Two measurement paths exist, matching DESIGN.md's conventions:

* :meth:`StreamHarness.run` — drives the full Fig. 9 dataflow design
  cycle-accurately: jobs stream to the Controller, data round-trips
  through the MUX/PolyMem/DEMUX, and per-run cycles come from the tick
  simulator.  Exact, used for correctness tests and small/medium sizes.
* :meth:`StreamHarness.measure_analytic` — the closed-form cycle count
  validated against the simulator (``tests/stream_bench``):
  ``cycles_per_run = vectors + read_latency + pipeline_slack``.  Used to
  sweep Fig. 10 quickly and to extrapolate to 1000-run batches.

Timing follows the paper's methodology: every stage is a sequence of
blocking host calls (each charged the ~300 ns PCIe overhead), the compute
stage is repeated ``runs`` times (the paper uses 1000), and only the
compute stage's wall clock enters the bandwidth figure.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError
from ..hw.calibration import STREAM_COPY
from ..maxeler.conditions import StreamFill
from ..telemetry import context as _telemetry
from .apps import DEFAULT_SCALAR, StreamApp
from .controller import Job, JobsDone, Mode, StreamDesign, build_stream_design

__all__ = ["StreamMeasurement", "StreamHarness", "Fig10Point", "sweep_fig10"]

#: extra cycles per run beyond ``vectors + read_latency``: command issue and
#: the MUX/feedback hop of the last element (exactly 2 in the tick
#: simulator, for every app and every size — see tests/stream_bench)
PIPELINE_SLACK_CYCLES = 2

#: reusable no-op context for telemetry-off stage scopes
_NULL = nullcontext()


@dataclass(frozen=True)
class StreamMeasurement:
    """One measured STREAM kernel execution."""

    app_name: str
    elements: int
    runs: int
    cycles_per_run: float
    clock_mhz: float
    host_overhead_ns: float
    bytes_per_element: int
    lanes: int

    @property
    def seconds_per_run(self) -> float:
        """Wall time of one blocking run: PCIe overhead + kernel time."""
        return self.host_overhead_ns * 1e-9 + self.cycles_per_run / (
            self.clock_mhz * 1e6
        )

    @property
    def total_seconds(self) -> float:
        return self.runs * self.seconds_per_run

    @property
    def bytes_per_run(self) -> int:
        return self.elements * self.bytes_per_element

    @property
    def mbps(self) -> float:
        """STREAM-style rate: MB/s (1 MB = 1e6 bytes, STREAM convention)."""
        return self.bytes_per_run / self.seconds_per_run / 1e6

    @property
    def ports_used(self) -> int:
        """Ports active per element: reads + the write."""
        return self.bytes_per_element // 8

    @property
    def peak_mbps(self) -> float:
        """Theoretical peak in MB/s: ``ports x lanes x 8 B x f`` — the
        paper's 2 x 8 x 8 x 120 = 15,360 MB/s for Copy."""
        return self.ports_used * self.lanes * 8 * self.clock_mhz

    @property
    def efficiency(self) -> float:
        """Measured / peak (the paper's >99% headline at 700 KB)."""
        return self.mbps / self.peak_mbps

    def record_telemetry(self) -> "StreamMeasurement":
        """Publish achieved/peak bandwidth into the active telemetry
        session (no-op when telemetry is off); returns self for chaining."""
        tel = _telemetry.active()
        if tel is not None:
            m = tel.metrics
            m.gauge("stream.achieved_mbps").set(self.mbps)
            m.gauge("stream.peak_mbps").set(self.peak_mbps)
            m.gauge("stream.efficiency").set(self.efficiency)
            m.counter("stream.measurements").inc()
        return self


class StreamHarness:
    """Orchestrates Load / compute / Offload over a Fig. 9 design."""

    def __init__(self, design: StreamDesign | None = None):
        self.design = design or build_stream_design()
        self.host = self.design.host()
        self._rng = np.random.default_rng(42)

    @property
    def lanes(self) -> int:
        return self.design.config.lanes

    @property
    def max_vectors(self) -> int:
        """Lane-vectors per array band (the paper's 170 x 512 limit)."""
        return self.design.controller.band_capacity_vectors()

    # -- stage drivers -----------------------------------------------------
    def load_arrays(self, vectors: int, seed: int = 42) -> dict[str, np.ndarray]:
        """Stage 1 (Load): stream A, B, C into their PolyMem bands.

        Returns the float64 reference arrays keyed ``"a"``, ``"b"``, ``"c"``.
        """
        if vectors > self.max_vectors:
            raise SimulationError(
                f"{vectors} vectors exceed the {self.max_vectors}-vector band"
            )
        rng = np.random.default_rng(seed)
        n = vectors * self.lanes
        arrays = {
            "a": rng.uniform(1.0, 2.0, n),
            "b": rng.uniform(1.0, 2.0, n),
            "c": rng.uniform(1.0, 2.0, n),
        }
        self.host.begin_stage("load")
        ctrl = self.design.controller
        tel = _telemetry.active()
        with tel.span("stage.load", cat="stream", vectors=vectors) if tel else _NULL:
            for idx, key in enumerate("abc"):
                bits = arrays[key].view(np.uint64).reshape(vectors, self.lanes)
                self.host.write_stream(f"{key}_in", list(bits))
                self.host.write_stream("job", [Job(Mode.LOAD, vectors, array=idx)])
                self.host.run_kernel(
                    until=JobsDone(ctrl, ctrl.completed_jobs + 1),
                    max_cycles=20 * vectors + 10_000,
                )
        return arrays

    def run_app(self, app: StreamApp, vectors: int, scalar: float = DEFAULT_SCALAR) -> int:
        """Stage 2 (compute): run *app* once, cycle-accurately.

        Returns the exact cycle count of the compute stage.
        """
        if app.read_ports_needed > self.design.config.read_ports:
            raise SimulationError(
                f"{app.name} needs {app.read_ports_needed} read ports"
            )
        ctrl = self.design.controller
        self.host.begin_stage(app.name.lower())
        before = self.design.dfe.simulator.cycles
        tel = _telemetry.active()
        scope = (
            tel.span(f"stage.compute.{app.name}", cat="stream", vectors=vectors)
            if tel
            else _NULL
        )
        with scope:
            self.host.write_stream(
                "job", [Job(app.mode, vectors, scalar=scalar)]
            )
            self.host.run_kernel(
                until=JobsDone(ctrl, ctrl.completed_jobs + 1),
                max_cycles=30 * vectors + 100_000,
            )
        return self.design.dfe.simulator.cycles - before

    def offload_array(self, array_index: int, vectors: int) -> np.ndarray:
        """Stage 3 (Offload): stream one array band back to the host."""
        ctrl = self.design.controller
        self.host.begin_stage("offload")
        out_name = f"{'abc'[array_index]}_out"
        out_stream = self.design.dfe.manager.host_output(out_name)
        tel = _telemetry.active()
        scope = (
            tel.span("stage.offload", cat="stream", vectors=vectors)
            if tel
            else _NULL
        )
        with scope:
            self.host.write_stream(
                "job", [Job(Mode.OFFLOAD, vectors, array=array_index)]
            )
            self.host.run_kernel(
                until=StreamFill(out_stream, vectors),
                max_cycles=30 * vectors + 100_000,
            )
            rows = self.host.read_stream(out_name)
        return np.concatenate([np.asarray(r) for r in rows]).view(np.float64)

    # -- end-to-end measurement ---------------------------------------------
    def run(
        self,
        app: StreamApp,
        vectors: int,
        runs: int = 1,
        scalar: float = DEFAULT_SCALAR,
        verify: bool = True,
    ) -> StreamMeasurement:
        """Full Load / compute(x1 measured, scaled to *runs*) / Offload.

        The compute stage is simulated once for the exact cycle count; the
        1000-run batching of the paper is a pure time multiplication (every
        run is identical — the simulator is deterministic).
        """
        arrays = self.load_arrays(vectors)
        cycles = self.run_app(app, vectors, scalar)
        if verify:
            got = self.offload_array(app.destination, vectors)
            want = app.expected(
                arrays["a"], arrays["b"], arrays["c"], scalar
            )
            if not np.allclose(got, want, rtol=1e-12):
                raise SimulationError(
                    f"{app.name}: offloaded data does not match the reference"
                )
        return StreamMeasurement(
            app_name=app.name,
            elements=vectors * self.lanes,
            runs=runs,
            cycles_per_run=cycles,
            clock_mhz=self.design.dfe.clock_mhz,
            host_overhead_ns=self.design.dfe.board.pcie.call_overhead_ns,
            bytes_per_element=app.bytes_per_element,
            lanes=self.lanes,
        ).record_telemetry()

    def measure_analytic(
        self, app: StreamApp, vectors: int, runs: int = 1000
    ) -> StreamMeasurement:
        """Closed-form measurement (no simulation): the validated cycle
        model ``vectors + read_latency + slack``."""
        cycles = vectors + self.design.read_latency + PIPELINE_SLACK_CYCLES
        return StreamMeasurement(
            app_name=app.name,
            elements=vectors * self.lanes,
            runs=runs,
            cycles_per_run=cycles,
            clock_mhz=self.design.dfe.clock_mhz,
            host_overhead_ns=self.design.dfe.board.pcie.call_overhead_ns,
            bytes_per_element=app.bytes_per_element,
            lanes=self.lanes,
        ).record_telemetry()


@dataclass(frozen=True)
class Fig10Point:
    """One point of the Fig. 10 series."""

    copied_kb: float
    mbps: float
    efficiency: float


def fig10_point(
    _config,
    vectors: int,
    runs: int,
    lanes: int,
    read_latency: int,
    clock_mhz: float,
    overhead_ns: float,
    bytes_per_element: int,
) -> dict:
    """One closed-form Fig. 10 point as a plain-JSON payload.

    Module-level and picklable — the :class:`~repro.exec.SweepTask`
    function of the Fig. 10 size sweep (the design is reduced to the five
    scalars the analytic cycle model needs, so workers never rebuild it).
    """
    cycles = vectors + read_latency + PIPELINE_SLACK_CYCLES
    m = StreamMeasurement(
        app_name="Copy",
        elements=vectors * lanes,
        runs=runs,
        cycles_per_run=cycles,
        clock_mhz=clock_mhz,
        host_overhead_ns=overhead_ns,
        bytes_per_element=bytes_per_element,
        lanes=lanes,
    )
    return {
        "copied_kb": vectors * lanes * 8 / 1024,
        "mbps": m.mbps,
        "efficiency": m.efficiency,
    }


def sweep_fig10(
    sizes_kb: list[float] | None = None,
    runs: int = STREAM_COPY.runs,
    harness: StreamHarness | None = None,
    workers: int | None = None,
    cache=None,
    progress=None,
    chunk_size: int | None = None,
) -> list[Fig10Point]:
    """Regenerate Fig. 10: Copy bandwidth vs copied data size.

    Uses the validated analytic cycle model (the full-size cycle-accurate
    run is covered by the integration tests), executed as one
    :func:`repro.exec.run_sweep` grid so the CLI's ``--workers`` /
    ``--cache-dir`` flags apply here too.
    """
    from ..exec import SweepTask, run_sweep
    from .apps import COPY

    harness = harness or StreamHarness()
    lanes = harness.lanes
    if sizes_kb is None:
        max_kb = harness.max_vectors * lanes * 8 / 1024
        sizes_kb = [max_kb * f / 20 for f in range(1, 21)]
    design = harness.design
    tasks = []
    for kb in sizes_kb:
        vectors = max(1, int(round(kb * 1024 / 8 / lanes)))
        vectors = min(vectors, harness.max_vectors)
        tasks.append(
            SweepTask(
                "stream.fig10",
                fig10_point,
                params={
                    "vectors": vectors,
                    "runs": runs,
                    "lanes": lanes,
                    "read_latency": design.read_latency,
                    "clock_mhz": design.dfe.clock_mhz,
                    "overhead_ns": design.dfe.board.pcie.call_overhead_ns,
                    "bytes_per_element": COPY.bytes_per_element,
                },
            )
        )
    sweep = run_sweep(
        tasks, workers=workers, cache=cache, progress=progress, chunk_size=chunk_size
    )
    return [Fig10Point(**v) for v in sweep.values()]
