"""The STREAM benchmark framework for MAX-PolyMem (paper §V, Fig. 9)."""

from .apps import COPY, SCALE, SUM, TRIAD, StreamApp, all_apps
from .controller import (
    Job,
    Mode,
    StreamController,
    StreamDesign,
    build_stream_design,
)
from .reporting import stream_report
from .harness import (
    Fig10Point,
    PIPELINE_SLACK_CYCLES,
    StreamHarness,
    StreamMeasurement,
    sweep_fig10,
)

__all__ = [
    "COPY",
    "Fig10Point",
    "Job",
    "Mode",
    "PIPELINE_SLACK_CYCLES",
    "SCALE",
    "SUM",
    "StreamApp",
    "StreamController",
    "StreamDesign",
    "StreamHarness",
    "StreamMeasurement",
    "TRIAD",
    "all_apps",
    "stream_report",
    "build_stream_design",
    "sweep_fig10",
]
