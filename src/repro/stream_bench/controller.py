"""The Fig. 9 STREAM design: Controller + MUX + DEMUX + MAX-PolyMem.

The host sends the Controller *jobs* (the ``Vector Sizes`` and ``Mode``
signals of Fig. 9); the Controller generates PolyMem read/write commands,
drives the write-input MUX (host arrays A/B/C or the feedback loop from
PolyMem's read port) and the output DEMUX (A_OUT/B_OUT/C_OUT).

PolyMem is split into three equal row bands holding the STREAM arrays A, B
and C.  All transfers move lane-wide vectors (``p*q`` 64-bit words per
stream element), modeling the wide PCIe stream interfaces of the MaxJ
implementation.

Stage semantics (paper §V):

* ``LOAD``   — host vectors stream through the MUX into PolyMem rows;
* ``COPY``   — reads of A stream back through the feedback MUX input and
  are written to C, one parallel read + one parallel write per cycle, with
  the read latency (14 cycles) separating the streams;
* ``SCALE``/``SUM``/``TRIAD`` — the paper's future-work apps, using the
  second read port for the two-operand kernels;
* ``OFFLOAD`` — rows stream out through the DEMUX to the host.
"""

from __future__ import annotations

import enum
import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.agu import AccessRequest
from ..core.config import PolyMemConfig
from ..core.exceptions import SimulationError
from ..core.patterns import PatternKind
from ..core.schemes import Scheme
from ..maxeler.batch import BatchOp, BatchPlan, PushClaim
from ..maxeler.conditions import RunCondition
from ..maxeler.dfe import DFE, VectisBoard
from ..maxeler.kernel import DemuxKernel, Kernel, MuxKernel
from ..maxeler.manager import Manager
from ..maxpolymem.kernel import DEFAULT_READ_LATENCY, FusedPolyMemKernel, WriteCommand
from ..program import AccessProgram

__all__ = [
    "Mode",
    "Job",
    "JobsDone",
    "StreamController",
    "StreamDesign",
    "build_stream_design",
]


def _bound(current: int | None, new: int) -> int:
    return new if current is None else min(current, new)

#: MUX input indices (Fig. 9 left side)
MUX_A, MUX_B, MUX_C, MUX_FEEDBACK = 0, 1, 2, 3

#: DEMUX output indices (Fig. 9 right side)
DEMUX_A, DEMUX_B, DEMUX_C = 0, 1, 2

#: bit-exact float64 <-> uint64 views for the arithmetic kernels
def _as_bits(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64).view(np.uint64)


def _as_floats(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.uint64).view(np.float64)


class Mode(str, enum.Enum):
    """The Controller's Mode signal."""

    LOAD = "load"
    COPY = "copy"
    SCALE = "scale"
    SUM = "sum"
    TRIAD = "triad"
    OFFLOAD = "offload"


@dataclass(frozen=True)
class Job:
    """One Mode transition sent by the host.

    ``array``: target array index (0=A, 1=B, 2=C) for LOAD/OFFLOAD.
    ``vectors``: number of lane-wide vectors to process.
    ``scalar``: the q constant of SCALE/TRIAD.
    """

    mode: Mode
    vectors: int
    array: int = 0
    scalar: float = 3.0


class StreamController(Kernel):
    """The Controller block of Fig. 9.

    Ports
    -----
    inputs:
        ``job`` (host), ``wr_data`` (from the MUX), ``rd_data0``/``rd_data1``
        (from PolyMem's read ports).
    outputs:
        ``mux_select``, ``demux_select``, ``demux_data``, ``feedback`` (to
        the MUX), ``wr_cmd``, ``rd_cmd0``/``rd_cmd1`` (to PolyMem).
    """

    #: pattern used for all STREAM accesses (rows, under the RoCo scheme)
    ACCESS = PatternKind.ROW

    def __init__(self, name: str, config: PolyMemConfig):
        super().__init__(name)
        self.config = config
        self.lanes = config.lanes
        if config.cols % self.lanes:
            raise SimulationError(
                "PolyMem columns must be a multiple of the lane count for "
                "row-streamed STREAM accesses"
            )
        #: rows per array band (A, B, C)
        self.band_rows = config.rows // 3
        if self.band_rows == 0:
            raise SimulationError("PolyMem too small to hold three arrays")
        self._jobs: deque[Job] = deque()
        self._job: Job | None = None
        self._reads_issued = 0
        self._writes_done = 0
        self._scalar_bits = 0.0
        self.completed_jobs = 0
        #: per-array cache of the band's full lowered anchor stream — every
        #: issued command is a slice of these arrays
        self._band_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- address generation -------------------------------------------------
    #
    # All STREAM access generation flows through one lowering: each array
    # band is a ROW anchor stream (lane-vector k at row k // per_row,
    # column (k % per_row) * lanes), cached by `_band_anchors`; the scalar
    # tick, the batched claims and `_job_program` all take slices of it.

    def _unchecked_anchors(
        self, array: int, start: int, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Anchors of lane-vectors ``start..start+n`` — no band bound."""
        per_row = self.config.cols // self.lanes
        ks = np.arange(start, start + n, dtype=np.int64)
        rows, slots = np.divmod(ks, per_row)
        return array * self.band_rows + rows, slots * self.lanes

    def _band_anchors(self, array: int) -> tuple[np.ndarray, np.ndarray]:
        """The full band's anchor stream (cached)."""
        cached = self._band_cache.get(array)
        if cached is None:
            cached = self._unchecked_anchors(
                array, 0, self.band_capacity_vectors()
            )
            self._band_cache[array] = cached
        return cached

    def _band_slice(self, array: int, start: int, n: int):
        """``(kind, ai, aj)`` of lane-vectors ``start..start+n``; raises
        once the slice leaves the band, like per-vector issue did."""
        if n and start + n > self.band_capacity_vectors():
            raise SimulationError(
                f"vector {start + n - 1} exceeds array band of "
                f"{self.band_rows} rows"
            )
        ai, aj = self._band_anchors(array)
        return self.ACCESS, ai[start : start + n], aj[start : start + n]

    def _vec_anchor(self, array: int, k: int) -> tuple[int, int]:
        """Anchor of lane-vector *k* of array band *array*."""
        _, ai, aj = self._band_slice(array, k, 1)
        return int(ai[0]), int(aj[0])

    def band_capacity_vectors(self) -> int:
        """Lane-vectors one array band can hold."""
        return self.band_rows * (self.config.cols // self.lanes)

    def job_program(self, job: Job) -> AccessProgram:
        """Deprecated: use ``repro.program.builder.build("stream.job", ...)``."""
        warnings.warn(
            "StreamController.job_program() is deprecated; use "
            "repro.program.builder.build('stream.job', controller=..., job=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._job_program(job)

    def _job_program(self, job: Job) -> AccessProgram:
        """Lower *job*'s full access stream to a describe-only program.

        LOAD is one write stream into the target band, OFFLOAD one read
        stream out of it; the compute modes read each source band on its
        own port (fused: one command per port per cycle) and write the
        destination band.  Out-of-band vectors are *not* rejected here —
        describe-only programs never execute, and issue-time slicing
        raises exactly where per-vector issue did.
        """
        prog = AccessProgram(
            f"stream_{job.mode.value}",
            metadata={"mode": job.mode.value, "vectors": job.vectors},
        )
        n = job.vectors

        def anchors(array):
            return self._unchecked_anchors(array, 0, n)

        if job.mode is Mode.LOAD:
            ai, aj = anchors(job.array)
            return prog.write(self.ACCESS, ai, aj)
        if job.mode is Mode.OFFLOAD:
            ai, aj = anchors(job.array)
            return prog.read(self.ACCESS, ai, aj, tag=f"band{job.array}")
        src_arrays, dst_array, _ = self._mode_spec(job)
        for port, array in enumerate(src_arrays):
            ai, aj = anchors(array)
            prog.read(
                self.ACCESS, ai, aj, port=port, tag=f"band{array}",
                fuse=port > 0,
            )
        ai, aj = anchors(dst_array)
        return prog.write(self.ACCESS, ai, aj)

    # -- execution ------------------------------------------------------------
    def _tick(self) -> bool:
        progressed = False
        job_in = self.inputs["job"]
        if self._job is None and job_in.can_pop():
            self._job = job_in.pop()
            self._reads_issued = 0
            self._writes_done = 0
            progressed = True
        if self._job is None:
            return progressed
        mode = self._job.mode
        handler = {
            Mode.LOAD: self._tick_load,
            Mode.COPY: self._tick_copy,
            Mode.SCALE: self._tick_scale,
            Mode.SUM: self._tick_sum,
            Mode.TRIAD: self._tick_triad,
            Mode.OFFLOAD: self._tick_offload,
        }[mode]
        if handler():
            progressed = True
        if self._job is not None and self._writes_done >= self._job.vectors:
            self._job = None
            self.completed_jobs += 1
            progressed = True
        return progressed

    @property
    def idle(self) -> bool:
        return self._job is None and not self._jobs

    # LOAD: select host array input on the MUX, write rows sequentially.
    def _tick_load(self) -> bool:
        job = self._job
        mux_sel = self.outputs["mux_select"]
        wr_data = self.inputs["wr_data"]
        wr_cmd = self.outputs["wr_cmd"]
        progressed = False
        if self._reads_issued < job.vectors and mux_sel.can_push():
            # one select token routes one host vector through the MUX
            mux_sel.push(job.array)
            self._reads_issued += 1
            progressed = True
        if wr_data.can_pop() and wr_cmd.can_push():
            vec = wr_data.pop()
            i, j = self._vec_anchor(job.array, self._writes_done)
            wr_cmd.push(WriteCommand(AccessRequest(self.ACCESS, i, j), vec))
            self._writes_done += 1
            progressed = True
        return progressed

    def _mode_spec(self, job: Job):
        """``(src_arrays, dst_array, combine)`` of a compute-stage job.

        The combine functions are written so they apply identically to one
        ``(lanes,)`` vector (scalar path) and a stacked ``(n, lanes)``
        window (batched path) — NumPy broadcasting keeps the arithmetic
        bit-identical either way.
        """
        q = job.scalar
        if job.mode is Mode.COPY:
            return (0,), 2, lambda a: a
        if job.mode is Mode.SCALE:
            return (1,), 0, lambda b: _as_bits(q * _as_floats(b))
        if job.mode is Mode.SUM:
            return (1, 2), 0, lambda b, c: _as_bits(_as_floats(b) + _as_floats(c))
        if job.mode is Mode.TRIAD:
            return (
                (1, 2),
                0,
                lambda b, c: _as_bits(_as_floats(b) + q * _as_floats(c)),
            )
        raise SimulationError(f"{job.mode} is not a compute stage")

    # COPY: read A on port 0, feed back through the MUX, write C.
    def _tick_copy(self) -> bool:
        return self._tick_feedback(*self._mode_spec(self._job))

    # SCALE: a = q * b -> read B, multiply, write A.
    def _tick_scale(self) -> bool:
        return self._tick_feedback(*self._mode_spec(self._job))

    # SUM: a = b + c -> read B (port 0) and C (port 1), add, write A.
    def _tick_sum(self) -> bool:
        return self._tick_feedback(*self._mode_spec(self._job))

    # TRIAD: a = b + q * c.
    def _tick_triad(self) -> bool:
        return self._tick_feedback(*self._mode_spec(self._job))

    def _tick_feedback(self, src_arrays, dst_array, combine) -> bool:
        """Shared logic for the compute stages: issue one parallel read per
        source port and turn arriving data into one parallel write."""
        job = self._job
        progressed = False
        if len(src_arrays) > self.config.read_ports:
            raise SimulationError(
                f"{job.mode.value} needs {len(src_arrays)} read ports, "
                f"design has {self.config.read_ports}"
            )
        # issue reads (one per port per cycle)
        if self._reads_issued < job.vectors:
            cmds = []
            for port, array in enumerate(src_arrays):
                stream = self.outputs[f"rd_cmd{port}"]
                if not stream.can_push():
                    break
                i, j = self._vec_anchor(array, self._reads_issued)
                cmds.append((stream, AccessRequest(self.ACCESS, i, j)))
            if len(cmds) == len(src_arrays):
                for stream, req in cmds:
                    stream.push(req)
                self._reads_issued += 1
                progressed = True
        # consume arriving data: combine and route the result through the
        # MUX's feedback input, as in Fig. 9 (the controller selects the
        # feedback loop)
        data_streams = [self.inputs[f"rd_data{p}"] for p in range(len(src_arrays))]
        mux_sel = self.outputs["mux_select"]
        feedback = self.outputs["feedback"]
        if (
            all(s.can_pop() for s in data_streams)
            and feedback.can_push()
            and mux_sel.can_push()
        ):
            vecs = [np.asarray(s.pop()) for s in data_streams]
            feedback.push(combine(*vecs))
            mux_sel.push(MUX_FEEDBACK)
            progressed = True
        # drain the MUX into write commands at the destination cursor
        wr_data = self.inputs["wr_data"]
        wr_cmd = self.outputs["wr_cmd"]
        if wr_data.can_pop() and wr_cmd.can_push():
            vec = wr_data.pop()
            i, j = self._vec_anchor(dst_array, self._writes_done)
            wr_cmd.push(WriteCommand(AccessRequest(self.ACCESS, i, j), vec))
            self._writes_done += 1
            progressed = True
        return progressed

    # OFFLOAD: read rows on port 0, route to the host through the DEMUX.
    def _tick_offload(self) -> bool:
        job = self._job
        progressed = False
        rd_cmd = self.outputs["rd_cmd0"]
        if self._reads_issued < job.vectors and rd_cmd.can_push():
            i, j = self._vec_anchor(job.array, self._reads_issued)
            rd_cmd.push(AccessRequest(self.ACCESS, i, j))
            self._reads_issued += 1
            progressed = True
        rd_data = self.inputs["rd_data0"]
        demux_data = self.outputs["demux_data"]
        demux_sel = self.outputs["demux_select"]
        if rd_data.can_pop() and demux_data.can_push() and demux_sel.can_push():
            demux_data.push(rd_data.pop())
            demux_sel.push(job.array)
            self._writes_done += 1
            progressed = True
        return progressed

    # -- batched execution ---------------------------------------------------
    #
    # Each sub-activity of `_tick_load`/`_tick_feedback`/`_tick_offload`
    # becomes a BatchOp moving exactly one element per port per cycle.
    # Command streams carry PushClaims: `mux_select`/`demux_select` claim
    # their uniform value (so the MUX/DEMUX can plan the routing) and the
    # PolyMem command streams claim their access anchors (so the memory
    # kernel can prove slot disjointness before committing to the chunk).

    def _vec_anchors(self, array: int, start: int, n: int):
        """Vectorized :meth:`_vec_anchor` for vectors ``start..start+n`` —
        a slice of the band's lowered anchor stream."""
        return self._band_slice(array, start, n)

    def _anchors_fn(self, array: int, start: int):
        def anchors(n: int):
            return self._vec_anchors(array, start, n)

        return anchors

    def _finish_writes(self, job: Job, done: int) -> None:
        self._writes_done = done
        if done >= job.vectors:
            # same tick as the final write, exactly like the scalar path
            self._job = None
            self.completed_jobs += 1

    def _issue_select_run(self, job: Job):
        start = self._reads_issued

        def run(n: int) -> None:
            self.outputs["mux_select"].push_many([job.array] * n)
            self._reads_issued = start + n

        return run

    def _issue_reads_run(self, src_arrays):
        start = self._reads_issued

        def run(n: int) -> None:
            for port, array in enumerate(src_arrays):
                kind, ai, aj = self._vec_anchors(array, start, n)
                self.outputs[f"rd_cmd{port}"].push_many(
                    [
                        AccessRequest(kind, i, j)
                        for i, j in zip(ai.tolist(), aj.tolist())
                    ]
                )
            self._reads_issued = start + n

        return run

    def _combine_run(self, nports: int, combine):
        def run(n: int) -> None:
            vecs = [
                np.stack(self.inputs[f"rd_data{p}"].pop_many(n))
                for p in range(nports)
            ]
            out = np.asarray(combine(*vecs))
            self.outputs["feedback"].push_many(list(out))
            self.outputs["mux_select"].push_many([MUX_FEEDBACK] * n)

        return run

    def _drain_op(self, job: Job, dst_array: int) -> BatchOp:
        start = self._writes_done
        anchors = self._anchors_fn(dst_array, start)

        def run(n: int) -> None:
            vecs = self.inputs["wr_data"].pop_many(n)
            kind, ai, aj = anchors(n)
            self.outputs["wr_cmd"].push_many(
                [
                    WriteCommand(AccessRequest(kind, i, j), vec)
                    for i, j, vec in zip(ai.tolist(), aj.tolist(), vecs)
                ]
            )
            self._finish_writes(job, start + n)

        return BatchOp(
            "drain",
            run,
            pops=("wr_data",),
            pushes=("wr_cmd",),
            claims={"wr_cmd": PushClaim(anchors=anchors)},
        )

    def _offload_emit_run(self, job: Job):
        start = self._writes_done

        def run(n: int) -> None:
            data = self.inputs["rd_data0"].pop_many(n)
            self.outputs["demux_data"].push_many(data)
            self.outputs["demux_select"].push_many([job.array] * n)
            self._finish_writes(job, start + n)

        return run

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        job = self._job
        if job is None:
            if len(self.inputs["job"]) > 0:
                return None  # job hand-off tick: scalar starts the mode
            return BatchPlan(sensitive=("job",))
        ops: list[BatchOp] = []
        sensitive: list[str] = []
        cycles: int | None = None
        reads_left = job.vectors - self._reads_issued
        writes_left = job.vectors - self._writes_done

        if job.mode is Mode.LOAD:
            if reads_left > 0:
                ops.append(
                    BatchOp(
                        "issue_sel",
                        self._issue_select_run(job),
                        pushes=("mux_select",),
                        claims={"mux_select": PushClaim(value=job.array)},
                    )
                )
                cycles = _bound(cycles, reads_left)
            if writes_left > 0 and len(self.inputs["wr_data"]) >= 1:
                ops.append(self._drain_op(job, job.array))
                cycles = _bound(cycles, writes_left)
            elif writes_left > 0:
                sensitive.append("wr_data")
        elif job.mode is Mode.OFFLOAD:
            if reads_left > 0:
                ops.append(
                    BatchOp(
                        "issue",
                        self._issue_reads_run((job.array,)),
                        pushes=("rd_cmd0",),
                        claims={
                            "rd_cmd0": PushClaim(
                                anchors=self._anchors_fn(
                                    job.array, self._reads_issued
                                )
                            )
                        },
                    )
                )
                cycles = _bound(cycles, reads_left)
            if writes_left > 0 and len(self.inputs["rd_data0"]) >= 1:
                ops.append(
                    BatchOp(
                        "emit",
                        self._offload_emit_run(job),
                        pops=("rd_data0",),
                        pushes=("demux_data", "demux_select"),
                        claims={"demux_select": PushClaim(value=job.array)},
                    )
                )
                cycles = _bound(cycles, writes_left)
            elif writes_left > 0:
                sensitive.append("rd_data0")
        else:
            src_arrays, dst_array, combine = self._mode_spec(job)
            nports = len(src_arrays)
            if reads_left > 0:
                claims = {
                    f"rd_cmd{p}": PushClaim(
                        anchors=self._anchors_fn(array, self._reads_issued)
                    )
                    for p, array in enumerate(src_arrays)
                }
                ops.append(
                    BatchOp(
                        "issue",
                        self._issue_reads_run(src_arrays),
                        pushes=tuple(claims),
                        claims=claims,
                    )
                )
                cycles = _bound(cycles, reads_left)
            data_ports = [f"rd_data{p}" for p in range(nports)]
            empty = [p for p in data_ports if len(self.inputs[p]) == 0]
            if not empty:
                ops.append(
                    BatchOp(
                        "combine",
                        self._combine_run(nports, combine),
                        pops=tuple(data_ports),
                        pushes=("feedback", "mux_select"),
                        claims={"mux_select": PushClaim(value=MUX_FEEDBACK)},
                    )
                )
            else:
                # a mid-chunk arrival on a dry port would start combining
                sensitive.extend(empty)
            if writes_left > 0 and len(self.inputs["wr_data"]) >= 1:
                ops.append(self._drain_op(job, dst_array))
                cycles = _bound(cycles, writes_left)
            elif writes_left > 0:
                sensitive.append("wr_data")

        if not ops:
            # waiting (e.g. on the read latency): scalar reports no progress
            return BatchPlan(sensitive=tuple(sensitive), active=False)
        return BatchPlan(cycles=cycles, ops=ops, sensitive=tuple(sensitive))


class JobsDone(RunCondition):
    """Typed run-condition: the controller has completed *target* jobs.

    The flip horizon lower-bounds the distance to completion by the
    current job's remaining writes (one write per cycle at best), letting
    the batched engine take full-size chunks without overshooting.
    """

    def __init__(self, controller: StreamController, target: int):
        self.controller = controller
        self.target = target

    def __call__(self) -> bool:
        return self.controller.completed_jobs >= self.target

    def min_cycles_to_flip(self) -> int:
        ctrl = self.controller
        if ctrl.completed_jobs >= self.target:
            return 0
        if ctrl._job is None:
            return 1
        return max(1, ctrl._job.vectors - ctrl._writes_done)


@dataclass
class StreamDesign:
    """The assembled Fig. 9 design."""

    manager: Manager
    config: PolyMemConfig
    controller: StreamController
    polymem: FusedPolyMemKernel | None
    dfe: DFE
    read_latency: int
    style: str = "fused"

    def host(self):
        from ..maxeler.host import Host

        return Host(self.dfe)


def build_stream_design(
    config: PolyMemConfig | None = None,
    clock_mhz: float = 120.0,
    read_latency: int = DEFAULT_READ_LATENCY,
    board: VectisBoard | None = None,
    style: str = "fused",
    collision_policy: str = "read_first",
) -> StreamDesign:
    """Assemble the STREAM framework of Fig. 9.

    The default configuration matches the paper's synthesized design: RoCo
    scheme, 8 lanes (2 x 4), 2 read ports, 120 MHz, a ~2 MB PolyMem of
    510 x 512 words — three bands of 170 x 512 x 8 B ~ 700 KB each, the
    paper's maximum array size.
    """
    if config is None:
        rows, cols = 510, 512
        config = PolyMemConfig(
            rows * cols * 8,
            p=2,
            q=4,
            scheme=Scheme.RoCo,
            read_ports=2,
            rows=rows,
            cols=cols,
        )
    if style not in ("fused", "modular"):
        raise SimulationError(f"unknown STREAM design style {style!r}")
    mgr = Manager("stream", style=style)
    controller = StreamController("controller", config)
    mux = MuxKernel("mux", 4)
    demux = DemuxKernel("demux", 3)
    for k in (controller, mux, demux):
        mgr.add_kernel(k)
    polymem = None
    if style == "fused":
        polymem = FusedPolyMemKernel(
            "polymem",
            config,
            read_latency=read_latency,
            collision_policy=collision_policy,
        )
        mgr.add_kernel(polymem)
        wr_ep = (polymem, "wr_cmd")
        rd_cmd_eps = [(polymem, f"rd_cmd{r}") for r in range(config.read_ports)]
        rd_out_eps = [(polymem, f"rd_out{r}") for r in range(config.read_ports)]
        effective_latency = read_latency
    else:
        from ..maxpolymem.modular import add_modular_polymem

        ep = add_modular_polymem(mgr, config)
        wr_ep = ep.wr_cmd
        rd_cmd_eps = ep.rd_cmd
        rd_out_eps = ep.rd_out
        # the tick simulator chains same-cycle through kernels registered
        # downstream, so the modular pipeline's observable latency is set
        # by its registration cuts (banks + controller round trip), not
        # the 7 stage count: exactly 1 extra cycle beyond the slack
        # (measured, size-independent — see tests/stream_bench)
        effective_latency = 1

    # host -> controller job stream; host -> MUX array inputs
    mgr.host_to_kernel("job", controller, "job")
    mgr.host_to_kernel("a_in", mux, "in0")
    mgr.host_to_kernel("b_in", mux, "in1")
    mgr.host_to_kernel("c_in", mux, "in2")
    # controller <-> MUX
    mgr.connect(controller, "feedback", mux, "in3", capacity=64)
    mgr.connect(controller, "mux_select", mux, "select", capacity=64)
    mgr.connect(mux, "out", controller, "wr_data", capacity=64)
    # controller <-> PolyMem
    mgr.connect(controller, "wr_cmd", *wr_ep, capacity=64)
    for port in range(config.read_ports):
        mgr.connect(controller, f"rd_cmd{port}", *rd_cmd_eps[port], capacity=64)
        mgr.connect(
            rd_out_eps[port][0],
            rd_out_eps[port][1],
            controller,
            f"rd_data{port}",
            capacity=64,
        )
    # controller -> DEMUX -> host
    mgr.connect(controller, "demux_data", demux, "in", capacity=64)
    mgr.connect(controller, "demux_select", demux, "select", capacity=64)
    mgr.kernel_to_host("a_out", demux, "out0")
    mgr.kernel_to_host("b_out", demux, "out1")
    mgr.kernel_to_host("c_out", demux, "out2")

    dfe = DFE(mgr, clock_mhz=clock_mhz, board=board, max_cycles=100_000_000)
    return StreamDesign(
        manager=mgr,
        config=config,
        controller=controller,
        polymem=polymem,
        dfe=dfe,
        read_latency=effective_latency,
        style=style,
    )
