#!/usr/bin/env python
"""PolyMem as a software cache between board DRAM and the kernel (Fig. 1).

A matrix far larger than the on-chip memory lives in LMem (the DFE's
DRAM).  The kernel processes it tile by tile: stage a tile into PolyMem,
hammer it with parallel accesses (a k-pass row sweep models data reuse),
stage it back.  The time ledger shows how reuse amortizes the staging cost
— the design rationale for putting a parallel memory on chip.

Run:  python examples/software_cache.py
"""

import numpy as np

from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxeler.lmem import LMem
from repro.maxpolymem.cache import SoftwareCache


def sweep(reuse: int) -> tuple[float, float]:
    """Process a 256x512 LMem matrix with *reuse* row-sweeps per tile.

    Returns (total ms, staging fraction).
    """
    lmem = LMem()  # 24 GB board DRAM, 38.4 GB/s, 200 ns bursts
    rows, cols = 256, 512
    rng = np.random.default_rng(0)
    matrix = rng.integers(0, 1 << 40, (rows, cols)).astype(np.uint64)
    lmem.write(0, matrix.ravel())

    tile_rows, tile_cols = 64, 128
    cfg = PolyMemConfig(
        tile_rows * tile_cols * 8, p=2, q=4, scheme=Scheme.ReRo,
        rows=tile_rows, cols=tile_cols,
    )
    cache = SoftwareCache(cfg, lmem, (rows, cols), clock_mhz=120)

    vec_per_row = tile_cols // cache.memory.lanes
    anchor_rows = np.repeat(np.arange(tile_rows), vec_per_row)
    anchor_cols = np.tile(np.arange(vec_per_row) * cache.memory.lanes, tile_rows)
    for tile in cache.tiles():
        cache.stage_in(tile)
        for _ in range(reuse):
            cache.read_batch(PatternKind.ROW, anchor_rows, anchor_cols)
        cache.stage_out()
    t = cache.timings
    return t.total_ns(120) / 1e6, t.staging_fraction(120)


def main() -> None:
    cfg_probe = PolyMemConfig(64 * 128 * 8, p=2, q=4, rows=64, cols=128)
    lmem = LMem()
    probe = SoftwareCache(cfg_probe, lmem, (256, 512), clock_mhz=120)
    print(f"tile: 64x128 (64 KB), LMem: {lmem.bandwidth_gbps} GB/s, "
          f"PolyMem: 8 lanes @ 120 MHz")
    print(f"predicted break-even reuse factor: {probe.breakeven_reuse():.1f} "
          f"accesses/element\n")

    print(f"{'reuse':>6s} {'total ms':>9s} {'staging %':>10s}")
    for reuse in (1, 2, 4, 8, 16, 32):
        ms, frac = sweep(reuse)
        print(f"{reuse:6d} {ms:9.3f} {frac * 100:9.1f}%")
    print("\nhigh reuse -> staging vanishes: the on-chip parallel memory "
          "turns a DRAM-bound kernel into a compute-bound one.")


if __name__ == "__main__":
    main()
