#!/usr/bin/env python
"""Quickstart: a polymorphic parallel memory in ten lines.

Creates a small PolyMem with the ReRo scheme (rectangles + rows + both
diagonals), loads a matrix, and shows the multiview property: data written
through one pattern is readable through every other supported pattern, each
as a single conflict-free parallel access.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KB,
    ConflictError,
    PatternKind,
    PolyMem,
    PolyMemConfig,
    Scheme,
)


def main() -> None:
    # 4 KB of 64-bit words over a 2x4 lane grid: 8 elements per cycle.
    config = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo)
    pm = PolyMem(config)
    print(f"PolyMem: {config.label()}, logical space {pm.rows}x{pm.cols}")

    # Load a matrix (host-side bulk transfer).
    matrix = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
    pm.load(matrix)

    # One cycle each, 8 elements each, any anchor:
    row = pm.read(PatternKind.ROW, 3, 5)
    rect = pm.read(PatternKind.RECTANGLE, 2, 6)
    diag = pm.read(PatternKind.MAIN_DIAGONAL, 1, 1)
    anti = pm.read(PatternKind.ANTI_DIAGONAL, 0, 9)
    print("row@(3,5)        :", row)
    print("rectangle@(2,6)  :", rect)
    print("main diag@(1,1)  :", diag)
    print("anti diag@(0,9)  :", anti)

    # Parallel writes work the same way; reads on other patterns see them.
    pm.write(PatternKind.RECTANGLE, 0, 0, np.full(8, 777, dtype=np.uint64))
    print("row@(0,0) after a rectangle write:", pm.read(PatternKind.ROW, 0, 0))

    # Unsupported patterns are rejected loudly, never silently serialized.
    try:
        pm.read(PatternKind.COLUMN, 0, 0)
    except ConflictError as exc:
        print(f"column read rejected as expected: {exc}")

    # Accounting: every parallel access costs exactly one cycle.
    print(f"cycles consumed: {pm.cycles}, elements read: "
          f"{pm.read_stats[0].elements}")


if __name__ == "__main__":
    main()
