#!/usr/bin/env python
"""Conjugate Gradient on the Polymorphic Register File.

The PRF lineage's canonical case study (the paper cites "Scalability
Evaluation of a Polymorphic Register File: a CG Case Study"): solve
``A x = b`` for a symmetric positive-definite matrix with every vector and
matrix held in polymorphic registers and every operation a PRF vector
instruction — matvec, AXPY, dot products — with parallel-access cycle
accounting throughout.

Run:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro.prf import PrfMachine, RegisterFile


def make_spd(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    m = rng.uniform(-1, 1, (n, n))
    a = m @ m.T + n * np.eye(n)  # SPD, well conditioned
    b = rng.uniform(-1, 1, n)
    return a, b


def cg_solve(machine: PrfMachine, n: int, a: np.ndarray, b: np.ndarray,
             tol: float = 1e-10, max_iter: int = 50) -> tuple[np.ndarray, int]:
    """Textbook CG, expressed entirely in PRF instructions."""
    rf = machine.rf
    cols = n  # vector registers as 1 x n rows
    rf.define("A", n, n)
    for name in ("x", "r", "p", "q"):
        rf.define(name, 1, cols)
    rf["A"].store(a)
    rf["x"].store(np.zeros((1, cols)))
    rf["r"].store(b.reshape(1, cols))
    rf["p"].store(b.reshape(1, cols))

    rs_old = machine.vdot("r", "r")
    iterations = 0
    for _ in range(max_iter):
        iterations += 1
        machine.vmv("q", "A", "p")            # q = A p
        alpha = rs_old / machine.vdot("p", "q")
        machine.vaxpy("x", alpha, "p", "x")   # x += alpha p
        machine.vaxpy("r", -alpha, "q", "r")  # r -= alpha q
        rs_new = machine.vdot("r", "r")
        if rs_new < tol:
            break
        machine.vaxpy("p", rs_new / rs_old, "p", "r")  # p = r + beta p
        rs_old = rs_new
    return rf["x"].load().ravel(), iterations


def main() -> None:
    n = 16
    a, b = make_spd(n)
    machine = PrfMachine(RegisterFile(capacity_kb=16))
    x, iters = cg_solve(machine, n, a, b)

    residual = np.linalg.norm(a @ x - b)
    reference = np.linalg.solve(a, b)
    print(f"CG on a {n}x{n} SPD system: converged in {iters} iterations")
    print(f"  |Ax - b|          = {residual:.3e}")
    print(f"  |x - x_ref|       = {np.linalg.norm(x - reference):.3e}")
    s = machine.stats
    print(f"  PRF instructions  = {s.instructions}")
    print(f"  parallel cycles   = {s.cycles}")
    print(f"  elements streamed = {s.elements}")
    print(f"  speedup vs scalar = {s.elements / s.cycles:.2f}x "
          f"(lanes = {machine.rf.lanes})")


if __name__ == "__main__":
    main()
