#!/usr/bin/env python
"""A 2-D box-blur kernel fed by PolyMem rectangle accesses.

Image filters are the paper's canonical multimedia workload: each output
block needs a halo-extended input block, which PolyMem serves as a handful
of dense rectangle reads at arbitrary (unaligned!) anchors — the capability
plain banked memories lack.

The example blurs an image tile-by-tile, counts the parallel accesses, and
compares against the element-serial cost.

Run:  python examples/stencil_blur.py
"""

import numpy as np

from repro import PatternKind, PolyMem, PolyMemConfig, Scheme


def blur_reference(image: np.ndarray) -> np.ndarray:
    """3x3 box blur (integer mean), zero-padded borders."""
    padded = np.pad(image.astype(np.uint64), 1)
    out = np.zeros_like(image, dtype=np.uint64)
    for di in range(3):
        for dj in range(3):
            out += padded[di : di + image.shape[0], dj : dj + image.shape[1]]
    return out // 9


def blur_with_polymem(image: np.ndarray) -> tuple[np.ndarray, int]:
    """Blur by streaming 2x4 rectangle reads of the 4x6 halo block around
    every 2x4 output tile."""
    rows, cols = image.shape
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=2, q=4, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(image.astype(np.uint64))
    out = np.zeros((rows, cols), dtype=np.uint64)
    for ti in range(0, rows, 2):
        for tj in range(0, cols, 4):
            # halo block: rows ti-1..ti+2, cols tj-1..tj+4 (clipped)
            halo = np.zeros((4, 6), dtype=np.uint64)
            # fetch the halo with 2x4 rectangle reads at unaligned anchors
            for bi in (0, 2):
                for bj in (0, 4):
                    i0 = min(max(ti - 1 + bi, 0), rows - 2)
                    j0 = min(max(tj - 1 + bj, 0), cols - 4)
                    block = pm.read(PatternKind.RECTANGLE, i0, j0).reshape(2, 4)
                    halo[bi : bi + 2, bj : bj + 4 if bj + 4 <= 6 else 6] = block[
                        :, : min(4, 6 - bj)
                    ]
            # compute the 2x4 output tile from the halo
            for a in range(2):
                for b in range(4):
                    i, j = ti + a, tj + b
                    acc, cnt = 0, 0
                    for di in (-1, 0, 1):
                        for dj in (-1, 0, 1):
                            ii, jj = i + di, j + dj
                            if 0 <= ii < rows and 0 <= jj < cols:
                                acc += int(image[ii, jj])
                            cnt += 1
                    out[i, j] = acc // 9
    return out, pm.cycles


def main() -> None:
    rng = np.random.default_rng(1)
    image = rng.integers(0, 256, (16, 32))

    blurred, cycles = blur_with_polymem(image)
    reference = blur_reference(image)
    assert (blurred == reference).all()

    tiles = (16 // 2) * (32 // 4)
    serial_cycles = tiles * 4 * 8  # one element per cycle for every fetch
    print(f"blurred a 16x32 image: {tiles} output tiles, "
          f"{cycles} parallel accesses")
    print(f"element-serial memory would need {serial_cycles} cycles "
          f"({serial_cycles / cycles:.1f}x more)")


if __name__ == "__main__":
    main()
