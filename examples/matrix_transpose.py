#!/usr/bin/env python
"""Blocked matrix transpose with the ReTr scheme.

The transpose kernel reads p x q tiles and writes them back as q x p tiles.
With a conventional banked memory (ReO: rectangles only), the q x p write
pattern conflicts and must be serialized element by element; ReTr makes
both orientations single-cycle at any anchor — the paper's motivating use
case for the Rectangle + Transposed Rectangle scheme.

Run:  python examples/matrix_transpose.py
"""

import numpy as np

from repro import PatternKind, PolyMem, PolyMemConfig, Scheme
from repro.core.conflict import serialization_factor


def transpose_with_retr(matrix: np.ndarray) -> tuple[np.ndarray, int]:
    """Transpose via PolyMem: read p x q tiles, write q x p tiles.

    Returns the transposed matrix and the parallel-access cycle count.
    """
    n = matrix.shape[0]
    src = PolyMem(PolyMemConfig(n * n * 8, p=2, q=4, scheme=Scheme.ReTr,
                                rows=n, cols=n))
    dst = PolyMem(PolyMemConfig(n * n * 8, p=2, q=4, scheme=Scheme.ReTr,
                                rows=n, cols=n))
    src.load(matrix.astype(np.uint64))
    for i in range(0, n, 2):
        for j in range(0, n, 4):
            tile = src.read(PatternKind.RECTANGLE, i, j)  # 2x4, row-major
            # transposed tile is 4x2 at (j, i): element (a, b) -> (b, a)
            tile_t = tile.reshape(2, 4).T.ravel()
            dst.write(PatternKind.TRANSPOSED_RECTANGLE, j, i, tile_t)
    return dst.dump(), src.cycles + dst.cycles


def conflict_cost(scheme: Scheme, n: int) -> int:
    """Cycles a transpose costs under *scheme*: conflicting accesses
    serialize by the worst per-bank load (the arbiter's cost)."""
    cycles = 0
    for i in range(0, n, 2):
        for j in range(0, n, 4):
            cycles += serialization_factor(
                scheme, PatternKind.RECTANGLE, i, j, 2, 4
            )
            cycles += serialization_factor(
                scheme, PatternKind.TRANSPOSED_RECTANGLE, j, i, 2, 4
            )
    return cycles


def main() -> None:
    n = 16
    rng = np.random.default_rng(0)
    matrix = rng.integers(0, 1000, (n, n))

    transposed, cycles = transpose_with_retr(matrix)
    assert (transposed == matrix.T).all()
    print(f"transposed a {n}x{n} matrix in {cycles} parallel-access cycles")

    reo = conflict_cost(Scheme.ReO, n)
    retr = conflict_cost(Scheme.ReTr, n)
    print(f"cycle cost under ReO  (writes serialize): {reo}")
    print(f"cycle cost under ReTr (both single-cycle): {retr}")
    print(f"ReTr speedup over rectangle-only banking: {reo / retr:.2f}x")


if __name__ == "__main__":
    main()
