#!/usr/bin/env python
"""Writing dataflow kernels in the MaxJ-like DSL (paper §II-B).

The paper's platform describes hardware as dataflow graphs in MaxJ.  This
example builds three classic MaxJ kernels in the mini-DSL — a moving-
average filter (stream offsets), SAXPY (typed arithmetic), and a
conditional accumulator (counter + mux) — compiles them, and streams data
through the cycle-accurate simulator.

Run:  python examples/maxj_kernels.py
"""


from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import FLOAT64, INT64, KernelGraph, compile_graph


def run(graph, inputs, fill=0):
    mgr = Manager(graph.name)
    kernel = mgr.add_kernel(compile_graph(graph, fill=fill))
    for name, values in inputs.items():
        src = mgr.add_kernel(SourceKernel(f"src_{name}", values))
        mgr.connect(src, "out", kernel, name)
    sinks = {}
    for name in graph.outputs:
        snk = mgr.add_kernel(SinkKernel(f"snk_{name}"))
        mgr.connect(kernel, name, snk, "in")
        sinks[name] = snk
    result = DFE(mgr, clock_mhz=150).run()
    return {n: s.collected for n, s in sinks.items()}, result


def main() -> None:
    # --- 1. moving average: the canonical MaxJ stream-offset example ------
    g = KernelGraph("avg3")
    x = g.input("x", FLOAT64)
    g.output("y", (x.offset(-2) + x.offset(-1) + x) / 3.0)
    data = [float(v) for v in (3, 6, 9, 12, 15, 18)]
    out, res = run(g, {"x": data}, fill=0.0)
    print(f"avg3   (depth {g.pipeline_depth()}, {res.cycles} cycles): "
          f"{out['y']}")

    # --- 2. SAXPY: z = a*x + y --------------------------------------------
    g = KernelGraph("saxpy")
    x = g.input("x", FLOAT64)
    y = g.input("y", FLOAT64)
    a = g.constant(2.5, FLOAT64)
    g.output("z", a * x + y)
    out, res = run(g, {"x": [1.0, 2.0, 3.0], "y": [10.0, 10.0, 10.0]})
    print(f"saxpy  (depth {g.pipeline_depth()}, {res.cycles} cycles): "
          f"{out['z']}")

    # --- 3. conditional accumulation: count threshold crossings -----------
    g = KernelGraph("edges")
    x = g.input("x", INT64)
    rising = (x > 50) & (x.offset(-1) <= 50)
    g.output("edge", g.mux(rising, g.constant(1, INT64), 0))
    signal = [10, 60, 70, 20, 55, 54, 10, 90]
    out, res = run(g, {"x": signal}, fill=0)
    print(f"edges  (depth {g.pipeline_depth()}, {res.cycles} cycles): "
          f"{out['edge']}  -> {sum(out['edge'])} rising edges")

    # throughput check: one element per cycle after the pipeline fills
    g = KernelGraph("tp")
    x = g.input("x", FLOAT64)
    g.output("y", x * 1.000001 * 0.999999)
    n = 10_000
    _, res = run(g, {"x": [1.0] * n})
    print(f"throughput: {n} elements in {res.cycles} cycles "
          f"({n / res.cycles:.3f} elem/cycle)")


if __name__ == "__main__":
    main()
