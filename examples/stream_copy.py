#!/usr/bin/env python
"""STREAM on MAX-PolyMem: the paper's §V experiment, end to end.

Builds the Fig. 9 design (Controller + MUX/DEMUX + PolyMem, RoCo 2x4,
2 read ports, 120 MHz), runs a cycle-accurate Copy for a small size to
show the staging, then sweeps Fig. 10 with the validated analytic model —
including the Scale/Sum/Triad kernels the paper left as future work.

Run:  python examples/stream_copy.py
"""

from repro.stream_bench import (
    COPY,
    StreamHarness,
    all_apps,
    stream_report,
    sweep_fig10,
)


def main() -> None:
    harness = StreamHarness()
    cfg = harness.design.config
    print(f"STREAM design: {cfg.label()}, {harness.design.dfe.clock_mhz:.0f} MHz, "
          f"arrays up to {harness.max_vectors * harness.lanes * 8 // 1024} KB")

    # --- a cycle-accurate run with stage timing --------------------------
    m = harness.run(COPY, vectors=512, runs=1000)
    print(f"\ncycle-accurate Copy of {m.elements * 8 // 1024} KB: "
          f"{m.cycles_per_run:.0f} cycles/run")
    for name, stage in harness.host.stages.items():
        if stage.total_ns:
            print(f"  stage {name:8s}: {stage.total_ns / 1e3:9.1f} us "
                  f"({stage.calls} host calls)")

    # --- all four STREAM kernels, in STREAM's own report format ----------
    # (the paper: "report them using the standard reporting of the STREAM
    # benchmark itself")
    measurements = [
        harness.measure_analytic(app, harness.max_vectors, runs=1000)
        for app in all_apps()
    ]
    print()
    print(stream_report(measurements))

    # --- Fig. 10: Copy bandwidth vs copied size ---------------------------
    print("\nFig. 10 — Copy bandwidth (aggregated) vs copied data:")
    print(f"{'KB':>8s} {'MB/s':>9s} {'of peak':>8s}")
    for pt in sweep_fig10(harness=harness):
        print(f"{pt.copied_kb:8.0f} {pt.mbps:9.0f} {pt.efficiency * 100:7.2f}%")
    print("\n(paper: 15,301 MB/s max = 99.6% of the 15,360 MB/s peak)")


if __name__ == "__main__":
    main()
