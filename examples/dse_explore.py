#!/usr/bin/env python
"""Design-space exploration: regenerate the paper's §IV study.

Sweeps the full Table III grid (capacity x lanes x read ports x scheme),
prints Table IV (model vs paper frequencies) and the headline bandwidth /
utilization findings, and functionally validates a sample of the designs
with the §IV-A unique-value read/write cycle.

Run:  python examples/dse_explore.py
"""

from repro.dse import (
    DesignSpace,
    explore,
    figure_series,
    render_series_table,
    render_table_iv,
)


def main() -> None:
    result = explore()
    print(render_table_iv(result, source="both"))

    print(f"peak write bandwidth : {result.peak_write_gbps:5.1f} GB/s "
          f"(paper: >22 GB/s, 512KB/16L ReO)")
    print(f"peak read bandwidth  : {result.peak_read_gbps:5.1f} GB/s "
          f"(paper: ~32 GB/s, 512KB/8L/4P ReTr)")
    best = result.best(lambda p: p.bandwidth.read_gbps)
    print(f"best read config     : {best.config.label()} @ {best.clock_mhz:.0f} MHz")

    print()
    series = figure_series(result, lambda p: p.bram_pct)
    print(render_series_table(series, "Fig. 8 — BRAM utilization", "%"))

    # validate a corner of the space functionally (full validation of every
    # config is done by the integration tests)
    small = DesignSpace(
        capacities_kb=(512,), lane_counts=(8, 16), read_ports=(1, 2)
    )
    validated = explore(small, validate=True, validate_rows=8)
    ok = sum(1 for p in validated.points if p.validated)
    print(f"functional validation: {ok}/{len(validated.points)} designs "
          f"passed the unique-value read/write cycle")


if __name__ == "__main__":
    main()
