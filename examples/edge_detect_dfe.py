#!/usr/bin/env python
"""A complete DFE image pipeline: PolyMem + a MaxJ-style Sobel kernel.

This flagship example composes the library end to end the way the paper's
§VII integration vision describes: an image lives in PolyMem (rectangle
reads at arbitrary anchors supply the 3x3 windows), the gradient
arithmetic is a dataflow kernel written in the MaxJ-like DSL, and the
whole thing runs on the cycle-accurate simulator.

Pipeline per pixel: PolyMem supplies the Sobel window rows as streams;
the DSL kernel computes |Gx| + |Gy| and thresholds it.

Run:  python examples/edge_detect_dfe.py
"""

import numpy as np

from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme
from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import INT64, KernelGraph, compile_graph


def sobel_graph() -> KernelGraph:
    """|Gx| + |Gy| over a 3x3 window streamed column by column.

    The window's three rows arrive as three streams (top, mid, bottom);
    stream offsets give the kernel the previous two columns, so each tick
    sees the full 3x3 neighbourhood — the classic MaxJ stencil idiom.
    """
    g = KernelGraph("sobel")
    top = g.input("top", INT64)
    mid = g.input("mid", INT64)
    bot = g.input("bot", INT64)
    t2, t1, t0 = top.offset(-2), top.offset(-1), top
    m2, m0 = mid.offset(-2), mid
    b2, b1, b0 = bot.offset(-2), bot.offset(-1), bot
    gx = (t0 + m0 * 2 + b0) - (t2 + m2 * 2 + b2)
    gy = (b2 + b1 * 2 + b0) - (t2 + t1 * 2 + t0)
    mag = gx.abs() + gy.abs()
    g.output("mag", mag)
    g.output("edge", g.mux(mag > 200, g.constant(1, INT64), 0))
    return g


def sobel_reference(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """NumPy reference for the interior pixels."""
    img = image.astype(np.int64)
    gx = (
        img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
    )
    gy = (
        img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
    )
    mag = np.abs(gx) + np.abs(gy)
    return mag, (mag > 200).astype(np.int64)


def main() -> None:
    rng = np.random.default_rng(3)
    rows, cols = 16, 32
    image = rng.integers(0, 256, (rows, cols))

    # stage the image into PolyMem; ReRo rows feed the window streams
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=2, q=4, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(image.astype(np.uint64))

    # fetch each row as parallel strips (PolyMem traffic, cycle-counted)
    def fetch_row(i):
        strips = pm.read_batch(
            PatternKind.ROW,
            np.full(cols // 8, i),
            np.arange(cols // 8) * 8,
        )
        return strips.ravel().astype(np.int64)

    mags = np.zeros((rows - 2, cols - 2), dtype=np.int64)
    edges = np.zeros_like(mags)
    total_cycles = 0
    for out_row in range(rows - 2):
        top, mid, bot = (fetch_row(out_row + d) for d in range(3))
        mgr = Manager("sobel")
        kernel = mgr.add_kernel(compile_graph(sobel_graph()))
        for name, data in (("top", top), ("mid", mid), ("bot", bot)):
            src = mgr.add_kernel(SourceKernel(f"src_{name}", list(data)))
            mgr.connect(src, "out", kernel, name)
        s_mag = mgr.add_kernel(SinkKernel("mag"))
        s_edge = mgr.add_kernel(SinkKernel("edge"))
        mgr.connect(kernel, "mag", s_mag, "in")
        mgr.connect(kernel, "edge", s_edge, "in")
        result = DFE(mgr, clock_mhz=150).run()
        total_cycles += result.cycles
        # the first two outputs are warm-up (offsets not yet filled)
        mags[out_row] = np.array(s_mag.collected[2:], dtype=np.int64)
        edges[out_row] = np.array(s_edge.collected[2:], dtype=np.int64)

    ref_mag, ref_edge = sobel_reference(image)
    assert (mags == ref_mag).all()
    assert (edges == ref_edge).all()
    print(f"Sobel over a {rows}x{cols} image: "
          f"{pm.cycles} PolyMem access cycles, "
          f"{total_cycles} dataflow kernel cycles")
    print(f"edge pixels found: {int(edges.sum())} "
          f"(reference agrees: {int(ref_edge.sum())})")
    print("PolyMem window fetches + MaxJ-DSL arithmetic = "
          "the paper's §VII integration vision, end to end.")


if __name__ == "__main__":
    main()
