#!/usr/bin/env python
"""Application-driven customization: the paper's §III-A end-to-end flow.

Given an application's memory access trace, find the optimal parallel
access schedule (minimum set cover, solved exactly by branch-and-bound ILP)
for every candidate (scheme, lane grid) and pick the best configuration by
speedup and efficiency — showing how different workloads favour different
PolyMem schemes.

Run:  python examples/custom_schedule.py
"""

from repro.schedule import (
    column_trace,
    customize,
    diagonal_trace,
    random_trace,
    row_trace,
    transpose_trace,
)


def report(trace, lane_grids=((2, 4),)):
    print(f"\nworkload {trace.name!r}: {len(trace)} cells in "
          f"{trace.rows}x{trace.cols}")
    result = customize(trace, lane_grids=list(lane_grids))
    print(f"  {'scheme':6s} {'lanes':>5s} {'accesses':>8s} "
          f"{'speedup':>8s} {'efficiency':>10s} {'optimal':>8s}")
    for s in sorted(result.schedules, key=lambda s: (-s.speedup, -s.efficiency)):
        print(f"  {s.scheme.value:6s} {s.lanes:5d} {s.n_accesses:8d} "
              f"{s.speedup:8.2f} {s.efficiency:10.2f} "
              f"{'yes' if s.proven_optimal else 'no':>8s}")
    best = result.best
    print(f"  -> choose {best.scheme.value} "
          f"({best.p}x{best.q}): {best.n_accesses} parallel accesses")
    return result


def main() -> None:
    # row-streaming kernel (e.g. the STREAM benchmark itself)
    report(row_trace(3, 32))
    # column sweep (matmul B-operand)
    report(column_trace(3, 32))
    # wavefront/diagonal kernel
    report(diagonal_trace(16, count=2))
    # transpose tile: both orientations matter
    report(transpose_trace(8, 8))
    # sparse irregular accesses: no scheme is perfect; ILP beats greedy
    trace = random_trace(12, 12, density=0.35, seed=3)
    result = report(trace)
    from repro.schedule import build_cover_problem, greedy_cover

    best = result.best
    prob = build_cover_problem(trace, best.scheme, best.p, best.q)
    print(f"  greedy on the winning config: {len(greedy_cover(prob))} accesses "
          f"(exact ILP: {best.n_accesses})")


if __name__ == "__main__":
    main()
