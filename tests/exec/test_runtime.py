"""Tests for the repro.exec sweep runtime.

Includes the ISSUE-1 equivalence requirement: the full Table III sweep
produces byte-identical SweepResults at workers=1 and workers=4, and the
ISSUE-7 extensions: chunked dispatch equivalence, the CPU-count clamp,
and streaming persistence of completed chunks when a worker raises.

Tests that need a real multi-worker pool pretend the machine has many
CPUs (``many_cpus``) — ``resolve_workers`` clamps to ``os.cpu_count()``,
and CI runners may have only one core.
"""

import os

import pytest

from repro.dse import explore
from repro.dse.space import PAPER_SPACE
from repro.exec import ResultCache, SweepTask, resolve_workers, run_sweep
from repro.exec.runtime import MIN_PARALLEL_TASKS, plan_chunk_size


def square(config, offset=0):
    """Module-level (picklable) toy task: config is a plain int here."""
    return {"square": config * config + offset}


def boom(config):
    raise ValueError(f"boom on {config}")


def _tasks(n, offset=0):
    return [
        SweepTask("test.square", square, i, params={"offset": offset})
        for i in range(n)
    ]


@pytest.fixture
def many_cpus(monkeypatch):
    """Pretend the host has 32 CPUs so the clamp never forces serial."""
    monkeypatch.setattr(os, "cpu_count", lambda: 32)


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None, 100) == 1
        assert resolve_workers(1, 100) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0, 100) == min(os.cpu_count() or 1, 100)

    def test_clamped_to_task_count(self, many_cpus):
        assert resolve_workers(16, MIN_PARALLEL_TASKS) == MIN_PARALLEL_TASKS

    def test_clamped_to_cpu_count(self, monkeypatch, caplog):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with caplog.at_level("INFO", logger="repro.exec.runtime"):
            assert resolve_workers(16, 100) == 2
        assert any("clamping workers 16 -> 2" in r.message for r in caplog.records)

    def test_tiny_grids_stay_serial(self, many_cpus):
        assert resolve_workers(8, MIN_PARALLEL_TASKS - 1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2, 10)


class TestPlanChunkSize:
    def test_explicit_size_wins(self):
        assert plan_chunk_size(100, 4, chunk_size=7) == 7

    def test_explicit_size_validated(self):
        with pytest.raises(ValueError):
            plan_chunk_size(100, 4, chunk_size=0)

    def test_balance_bound_without_cost_estimate(self):
        # 90 points / (4 workers * 4 chunks-per-worker) -> 6 per chunk
        assert plan_chunk_size(90, 4) == 6

    def test_cheap_tasks_coarsen_up_to_balance_bound(self):
        # 1 ms/point would allow 200-point chunks, but load balance caps it
        assert plan_chunk_size(90, 4, mean_task_seconds=0.001) == 6

    def test_expensive_tasks_split_finer(self):
        # 0.15 s/point -> ~2 points reach the target chunk cost
        assert plan_chunk_size(90, 4, mean_task_seconds=0.15) == 2

    def test_never_below_one(self):
        assert plan_chunk_size(3, 4, mean_task_seconds=10.0) == 1


class TestRunSweep:
    def test_serial_order_and_values(self):
        sweep = run_sweep(_tasks(6))
        assert sweep.workers == 1
        assert sweep.values() == [{"square": i * i} for i in range(6)]
        assert sweep.n_computed == 6 and sweep.n_cached == 0
        assert sweep.wall_seconds >= 0
        assert sweep.compute_seconds >= 0

    def test_parallel_matches_serial_byte_for_byte(self, many_cpus):
        serial = run_sweep(_tasks(10))
        parallel = run_sweep(_tasks(10), workers=4)
        assert parallel.workers > 1
        assert parallel.payload_json() == serial.payload_json()
        assert parallel.values() == serial.values()

    def test_chunked_matches_unchunked_byte_for_byte(self, many_cpus):
        serial = run_sweep(_tasks(11))
        for size in (1, 3, 11, 50):
            chunked = run_sweep(_tasks(11), workers=4, chunk_size=size)
            assert chunked.payload_json() == serial.payload_json(), size
        auto = run_sweep(_tasks(11), workers=4)  # cost-model sizing
        assert auto.payload_json() == serial.payload_json()

    def test_chunk_accounting(self, many_cpus):
        sweep = run_sweep(_tasks(10), workers=4, chunk_size=3)
        # pilot point runs in the parent; 9 remaining points -> 3 chunks
        assert sweep.chunks == 3
        assert sweep.warmup_seconds >= 0.0
        assert sweep.ipc_seconds >= 0.0
        serial = run_sweep(_tasks(10))
        assert serial.chunks == 0 and serial.ipc_seconds == 0.0

    def test_results_keep_task_order(self, many_cpus):
        tasks = _tasks(12)
        sweep = run_sweep(tasks, workers=3)
        for task, result in zip(tasks, sweep.results):
            assert result.key == task.cache_key()
            assert result.experiment_id == task.experiment_id

    def test_cache_hits_skip_computation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(_tasks(8), cache=cache)
        assert cold.n_computed == 8
        warm = run_sweep(_tasks(8), cache=cache)
        assert warm.n_cached == 8 and warm.n_computed == 0
        assert all(r.seconds == 0.0 and r.cached for r in warm.results)
        assert warm.payload_json() == cold.payload_json()

    def test_partial_cache_recomputes_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_tasks(5), cache=cache)
        mixed = run_sweep(_tasks(8), cache=cache)  # 3 new points
        assert mixed.n_cached == 5 and mixed.n_computed == 3
        assert mixed.values() == [{"square": i * i} for i in range(8)]

    def test_param_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_tasks(5), cache=cache)
        changed = run_sweep(_tasks(5, offset=1), cache=cache)
        assert changed.n_computed == 5
        assert changed.values() == [{"square": i * i + 1} for i in range(5)]

    def test_progress_callback(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_tasks(3), cache=cache)
        seen = []
        run_sweep(
            _tasks(6),
            cache=cache,
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert [d for d, _ in seen] == list(range(1, 7))
        assert all(t == 6 for _, t in seen)

    def test_progress_streams_in_parallel(self, many_cpus):
        """Parallel progress fires once per point as chunks land — not in
        one burst after the whole sweep (the pre-ISSUE-7 behaviour)."""
        seen = []
        run_sweep(
            _tasks(10),
            workers=2,
            chunk_size=2,
            progress=lambda done, total, result: seen.append((done, result)),
        )
        assert [d for d, _ in seen] == list(range(1, 11))
        assert sorted(r.value["square"] for _, r in seen) == sorted(
            i * i for i in range(10)
        )

    def test_worker_exception_propagates_serial(self):
        tasks = _tasks(3) + [SweepTask("test.boom", boom, 99)]
        with pytest.raises(ValueError, match="boom on 99"):
            run_sweep(tasks)

    def test_worker_exception_propagates_parallel(self, many_cpus):
        tasks = _tasks(4) + [SweepTask("test.boom", boom, 99)]
        with pytest.raises(ValueError, match="boom on 99"):
            run_sweep(tasks, workers=2)

    def test_completed_chunks_persist_through_failure(self, many_cpus, tmp_path):
        """A late worker crash must not lose earlier points: every chunk
        that completed before the failure is already in the cache, so the
        re-run resumes instead of starting over (the ISSUE-7 satellite)."""
        cache = ResultCache(tmp_path / "cache")
        good = _tasks(8)
        tasks = good + [SweepTask("test.boom", boom, 99)]
        with pytest.raises(ValueError, match="boom on 99"):
            # chunk_size=1 with 2 workers: the boom chunk is dispatched
            # last, after every square chunk has started
            run_sweep(tasks, workers=2, cache=cache, chunk_size=1)
        persisted = sum(t.cache_key() in cache for t in good)
        assert persisted == len(good)
        resumed = run_sweep(good, cache=cache)
        assert resumed.n_cached == len(good)

    def test_explicit_key_overrides_derived(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        a = SweepTask("test.square", square, 3, key="pinned")
        run_sweep([a], cache=cache)
        # a different config under the same pinned key is a cache hit
        b = SweepTask("test.square", square, 4, key="pinned")
        sweep = run_sweep([b], cache=cache)
        assert sweep.n_cached == 1
        assert sweep.values() == [{"square": 9}]


class TestTableIIIEquivalence:
    """ISSUE-1: the full Table III sweep is byte-identical at 1 vs 4 workers."""

    def test_full_sweep_workers_1_vs_4(self, many_cpus):
        serial = explore(workers=1)
        parallel = explore(workers=4)
        assert len(serial.points) == PAPER_SPACE.size()
        assert serial.sweep is not None and parallel.sweep is not None
        assert parallel.sweep.payload_json() == serial.sweep.payload_json()
        assert [p.config.label() for p in parallel.points] == [
            p.config.label() for p in serial.points
        ]
        assert [p.model_mhz for p in parallel.points] == [
            p.model_mhz for p in serial.points
        ]

    def test_cached_sweep_equals_computed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = explore(workers=2, cache=cache)
        warm = explore(workers=2, cache=cache)
        assert warm.sweep.n_cached == PAPER_SPACE.size()
        assert warm.sweep.payload_json() == cold.sweep.payload_json()
        assert warm.points == cold.points


def square_batch(configs, offset=0):
    """Module-level (picklable) vectorized twin of :func:`square`."""
    return [{"square": c * c + offset} for c in configs]


def square_batch_short(configs, offset=0):
    return square_batch(configs, offset)[:-1]


def _batch_tasks(n, offset=0, batch_fn=square_batch):
    return [
        SweepTask(
            "test.square", square, i, params={"offset": offset},
            batch_fn=batch_fn,
        )
        for i in range(n)
    ]


class TestBatchDispatch:
    def test_serial_batch_matches_scalar(self):
        scalar = run_sweep(_tasks(7, offset=3))
        batched = run_sweep(_batch_tasks(7, offset=3))
        assert batched.payload_json() == scalar.payload_json()
        assert batched.batched_points == 7
        assert batched.batch_calls == 1
        assert scalar.batched_points == 0

    def test_param_groups_dispatch_separately(self):
        tasks = _batch_tasks(3, offset=0) + _batch_tasks(3, offset=9)
        sweep = run_sweep(tasks)
        assert sweep.values() == [{"square": i * i} for i in range(3)] + [
            {"square": i * i + 9} for i in range(3)
        ]
        assert sweep.batch_calls == 2
        assert sweep.batched_points == 6

    def test_mixed_scalar_and_batch_tasks(self):
        tasks = _batch_tasks(4) + _tasks(3)
        sweep = run_sweep(tasks)
        assert sweep.values() == [{"square": i * i} for i in range(4)] + [
            {"square": i * i} for i in range(3)
        ]
        assert sweep.batched_points == 4
        assert sweep.batch_calls == 1

    def test_batch_fn_not_in_cache_key(self, tmp_path):
        """Scalar- and batch-run sweeps share cache entries."""
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(_tasks(5), cache=cache)
        warm = run_sweep(_batch_tasks(5), cache=cache)
        assert warm.n_cached == 5
        assert warm.batched_points == 0
        assert warm.payload_json() == cold.payload_json()

    def test_payload_count_mismatch_raises(self):
        with pytest.raises(RuntimeError, match="payloads"):
            run_sweep(_batch_tasks(4, batch_fn=square_batch_short))

    def test_parallel_chunks_use_batch_path(self, many_cpus):
        serial = run_sweep(_tasks(40))
        parallel = run_sweep(_batch_tasks(40), workers=4, chunk_size=10)
        assert parallel.payload_json() == serial.payload_json()
        # every point except the scalar cost-probe pilot goes batched
        assert parallel.batched_points == 39
        assert parallel.batch_calls >= 4
