"""Tests for the fork-after-warm machinery (repro.exec.warm).

The load-bearing claims: plan families and Benes routes compiled in the
parent before the pool starts are *visible inside the workers* without
recompilation — via copy-on-write inheritance on fork platforms, and via
the pool initializer replay on spawn platforms — and both start methods
produce byte-identical sweeps.
"""

import os
import pickle

import pytest

from repro.core.patterns import PatternKind
from repro.core.plan import compile_plan, plan_cache_keys
from repro.core.schemes import Scheme
from repro.core.shuffle import route_memo
from repro.exec import SweepTask, run_sweep
from repro.exec.warm import (
    WarmSpec,
    cache_stats,
    collect_warmups,
    export_warm_state,
    run_warmups,
    stats_delta,
    warm_initializer,
)

# a geometry obscure enough that only this module compiles it
SENTINEL = (96, 96, 3, 2, Scheme.ReRo, PatternKind.RECTANGLE, 1)


def sentinel_warmup(config, **params):
    """Module-level (picklable) warm hook: compile the sentinel family."""
    compile_plan(*SENTINEL)


def probe_plan_cache(config, **params):
    """Task fn reporting whether this worker already has the sentinel
    plan — and how many compiles becoming visible would cost it."""
    stats = cache_stats()
    return {
        "pid": os.getpid(),
        "has_sentinel": list(SENTINEL) in [list(k) for k in plan_cache_keys()],
        "misses_before": stats["plan_cache.misses"],
    }


def _probe_tasks(n):
    return [
        SweepTask("test.warm.probe", probe_plan_cache, i, warmup=sentinel_warmup)
        for i in range(n)
    ]


@pytest.fixture
def many_cpus(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 32)


class TestCollectWarmups:
    def test_dedup_by_content(self):
        tasks = [
            SweepTask("t", probe_plan_cache, 1, warmup=sentinel_warmup),
            SweepTask("t", probe_plan_cache, 1, warmup=sentinel_warmup),
            SweepTask("t", probe_plan_cache, 2, warmup=sentinel_warmup),
            SweepTask("t", probe_plan_cache, 3),  # no hook
        ]
        specs = collect_warmups(tasks)
        # distinct configs are distinct specs; identical ones collapse
        assert len(specs) == 2
        assert all(spec.fn is sentinel_warmup for spec in specs)

    def test_run_warmups_reports_fresh_compiles(self):
        from repro.core import plan as plan_mod

        fresh = (80, 80, 5, 2, Scheme.RoCo, PatternKind.ROW, 1)
        assert list(fresh) not in [list(k) for k in plan_mod.plan_cache_keys()]

        def warm_fresh(config, **params):
            compile_plan(*fresh)

        report = run_warmups([WarmSpec(warm_fresh, None, {})])
        assert report.specs == 1
        assert report.plans >= 1
        assert report.seconds >= 0.0
        # second pass: everything already resident
        again = run_warmups([WarmSpec(warm_fresh, None, {})])
        assert again.plans == 0

    def test_stats_delta_clamps_negative(self):
        assert stats_delta({"a": 5}, {"a": 3, "b": 2}) == {"a": 0, "b": 2}


class TestWarmStateExport:
    def test_state_is_picklable_and_covers_sentinel(self):
        compile_plan(*SENTINEL)
        state = export_warm_state(collect_warmups(_probe_tasks(2)))
        assert SENTINEL in state.plan_keys
        blob = pickle.dumps(state)  # must cross the spawn boundary
        assert pickle.loads(blob).plan_keys == state.plan_keys

    def test_initializer_replays_routes(self):
        import numpy as np

        from repro.core.shuffle import BenesNetwork

        perm = np.array([2, 0, 3, 1], dtype=np.int64)
        BenesNetwork(4).route(perm)
        state = export_warm_state([])
        assert (4, (2, 0, 3, 1)) in state.route_perms
        route_memo.clear()
        warm_initializer(state)
        assert (4, [2, 0, 3, 1]) in route_memo.export_keys()


class TestWorkersInheritWarmCaches:
    """The tentpole property, both start methods."""

    def _assert_workers_warm(self, sweep):
        values = sweep.values()
        worker_pids = {v["pid"] for v in values if v["pid"] != os.getpid()}
        assert worker_pids, "no point actually ran in a worker"
        for v in values:
            # every process — parent pilot and workers alike — sees the
            # sentinel family without having compiled it in-task, and the
            # warm pass's compile misses are already on its books
            assert v["has_sentinel"], v
            assert v["misses_before"] >= 1

    def test_forked_workers_see_parent_plans(self, many_cpus):
        sweep = run_sweep(_probe_tasks(8), workers=2, chunk_size=1)
        assert sweep.workers == 2
        self._assert_workers_warm(sweep)

    def test_spawned_workers_rewarmed_by_initializer(self, many_cpus):
        sweep = run_sweep(
            _probe_tasks(8), workers=2, chunk_size=1, _start_method="spawn"
        )
        assert sweep.workers == 2
        self._assert_workers_warm(sweep)

    def test_fork_and_spawn_sweeps_agree(self, many_cpus):
        def strip(sweep):
            # pids differ by construction; compare everything else
            return [
                (r.key, r.value["has_sentinel"]) for r in sweep.results
            ]

        forked = run_sweep(_probe_tasks(6), workers=2)
        spawned = run_sweep(_probe_tasks(6), workers=2, _start_method="spawn")
        assert strip(forked) == strip(spawned)


class TestWarmFamilies:
    """Warm-up dedup by config *family*: siblings differing only in axes
    the warmed caches are blind to (read ports) share one spec, so a
    chunk never compiles the same plan family twice."""

    def _validate_tasks(self, read_ports):
        from repro.core.config import KB, PolyMemConfig
        from repro.maxpolymem.validation import validate_config, warm_validation

        return [
            SweepTask(
                "maxpolymem.validate",
                validate_config,
                PolyMemConfig(
                    64 * KB, p=2, q=4, scheme=Scheme.ReCo, read_ports=r
                ),
                params={"max_rows": 8, "style": "fused"},
                warmup=warm_validation,
            )
            for r in read_ports
        ]

    def test_read_port_siblings_collapse_to_one_spec(self):
        specs = collect_warmups(self._validate_tasks([1, 2, 3, 4]))
        assert len(specs) == 1

    def test_no_duplicate_plan_misses_within_chunk(self):
        """After the chunk's single warm-up, re-warming any sibling is
        pure cache hits — the regression the family key exists for."""
        from repro.maxpolymem.validation import warm_validation

        tasks = self._validate_tasks([1, 2, 3])
        specs = collect_warmups(tasks)
        run_warmups(specs)
        before = cache_stats()["plan_cache.misses"]
        for task in tasks:
            warm_validation(task.config, **dict(task.params))
        assert cache_stats()["plan_cache.misses"] == before

    def test_dse_point_families(self):
        from repro.dse.explore import evaluate_point, warm_point
        from repro.dse.space import PAPER_SPACE

        cfgs = list(PAPER_SPACE.points())
        device = PAPER_SPACE.device.name

        def tasks(validate):
            return [
                SweepTask(
                    "dse.point",
                    evaluate_point,
                    cfg,
                    params={
                        "validate": validate,
                        "validate_rows": 8,
                        "device": device,
                    },
                    warmup=warm_point,
                )
                for cfg in cfgs
            ]

        # not validating: the model fit is the only warm state -> 1 spec
        assert len(collect_warmups(tasks(False))) == 1
        # validating: one spec per (rows, cols, p, q, scheme) family;
        # 90 points collapse to 18 columns x 5 schemes / port siblings
        specs = collect_warmups(tasks(True))
        families = {
            (t.config.rows, t.config.cols, t.config.p, t.config.q,
             t.config.scheme)
            for t in tasks(True)
        }
        assert len(specs) == len(families)
        assert len(specs) < len(cfgs)
