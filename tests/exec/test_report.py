"""Tests for the unified repro.exec report schema."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.schemes import Scheme
from repro.exec import (
    MODEL_VERSION,
    REPORT_FORMAT,
    Report,
    ReportEntry,
    rel_error,
)
from repro.exec.report import entries_from_series


class TestRelError:
    def test_signed(self):
        assert rel_error(110.0, 100.0) == pytest.approx(0.10)
        assert rel_error(90.0, 100.0) == pytest.approx(-0.10)

    def test_missing_or_zero_reference(self):
        assert rel_error(None, 100.0) is None
        assert rel_error(100.0, None) is None
        assert rel_error(100.0, 0.0) is None


class TestReportEntry:
    def test_compare_within_tolerance(self):
        e = ReportEntry.compare("Table IV", "Fmax [MHz]", 190.0, 194.0, 0.10)
        assert e.ok is True
        assert e.rel_err == pytest.approx(-4 / 194)

    def test_compare_outside_tolerance(self):
        e = ReportEntry.compare("Table IV", "Fmax [MHz]", 120.0, 194.0, 0.10)
        assert e.ok is False

    def test_compare_without_tolerance_is_informational(self):
        e = ReportEntry.compare("Fig. 4", "write BW [GB/s]", 48.0, 51.0)
        assert e.ok is None and e.rel_err is not None


class TestReport:
    def _report(self):
        return Report(
            title="demo report",
            entries=[
                ReportEntry.compare("Table IV", "Fmax A", 190.0, 194.0, 0.10),
                ReportEntry.compare("Table IV", "Fmax B", 100.0, 194.0, 0.10),
                ReportEntry("Fig. 10", "peak copy [MB/s]", measured=15301.5),
            ],
            meta={"source": "test"},
        )

    def test_counts(self):
        r = self._report()
        assert r.n_checked == 2
        assert r.n_passed == 1
        assert not r.all_ok

    def test_model_version_stamped(self):
        assert self._report().meta["model_version"] == MODEL_VERSION

    def test_json_roundtrip(self):
        r = self._report()
        text = r.to_json()
        assert f'"{REPORT_FORMAT}"' in text
        back = Report.from_json(text)
        assert back.title == r.title
        assert back.entries == r.entries
        assert back.meta == r.meta

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(ConfigurationError):
            Report.from_json('{"format": "something/else", "entries": []}')

    def test_save(self, tmp_path):
        path = self._report().save(tmp_path / "report.json")
        assert Report.from_json(path.read_text()).title == "demo report"

    def test_render(self):
        text = self._report().render()
        assert "demo report" in text
        assert "[PASS] Fmax A" in text
        assert "[FAIL] Fmax B" in text
        assert "[    ] peak copy [MB/s]" in text
        assert "paper:    194" in text
        assert "rel. err" in text
        assert "1/2 checks passed" in text

    def test_render_sweep_meta(self):
        from repro.exec import SweepTask, run_sweep

        def _noop(config):  # serial-only, no pickling needed
            return {"v": config}

        sweep = run_sweep([SweepTask("t", _noop, i) for i in range(3)])
        r = self._report()
        r.add_sweep_meta(sweep)
        r.add_sweep_meta(sweep)
        assert r.meta["sweep_points"] == 6
        assert "sweep: 6 points, 0 cached, 1 worker(s)" in r.render()


def test_entries_from_series():
    series = {
        Scheme.ReRo: [("2x4", 51.1), ("2x8", 99.5)],
        Scheme.RoCo: [("2x4", 49.0)],
    }
    entries = entries_from_series("Fig. 4", series, "write BW [GB/s]")
    assert len(entries) == 3
    assert entries[0].experiment == "Fig. 4"
    assert entries[0].quantity.startswith("write BW [GB/s] [ReRo @ 2x4")
    assert entries[1].measured == 99.5
