"""Tests for the repro.exec content-addressed result cache.

Covers the ISSUE-1 cache requirements: hash stability across processes,
invalidation on PolyMemConfig field changes and model-version bumps, and
corrupted-entry recovery (recompute, never crash).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.exec import (
    MISS,
    MODEL_VERSION,
    ResultCache,
    SweepTask,
    cache_key,
    default_cache_dir,
    run_sweep,
)


@pytest.fixture
def config():
    return PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=2)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheKey:
    def test_deterministic_within_process(self, config):
        a = cache_key("dse.point", config, {"validate": False})
        b = cache_key("dse.point", config, {"validate": False})
        assert a == b
        assert len(a) == 64 and int(a, 16) >= 0  # sha256 hex

    def test_param_order_irrelevant(self, config):
        a = cache_key("x", config, {"a": 1, "b": 2})
        b = cache_key("x", config, {"b": 2, "a": 1})
        assert a == b

    def test_stable_across_processes_and_hash_seeds(self, config):
        """The key must be reproducible in a fresh interpreter — including
        under a different PYTHONHASHSEED (no dict-order/str-hash leakage)."""
        expected = cache_key("dse.point", config, {"validate": True, "rows": 8})
        script = (
            "from repro.core.config import KB, PolyMemConfig\n"
            "from repro.core.schemes import Scheme\n"
            "from repro.exec import cache_key\n"
            "cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo,"
            " read_ports=2)\n"
            "print(cache_key('dse.point', cfg,"
            " {'validate': True, 'rows': 8}))\n"
        )
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == expected

    def test_invalidates_on_config_field_change(self, config):
        base = cache_key("dse.point", config)
        variants = [
            config.with_(capacity_bytes=1024 * KB),
            config.with_(scheme=Scheme.ReCo),
            config.with_(read_ports=1),
            config.with_(p=2, q=8),
            config.with_(width_bits=32),
        ]
        keys = {cache_key("dse.point", v) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)  # every field participates

    def test_invalidates_on_model_version_bump(self, config):
        current = cache_key("dse.point", config)
        assert current == cache_key(
            "dse.point", config, model_version=MODEL_VERSION
        )
        assert current != cache_key(
            "dse.point", config, model_version="2099.01.0"
        )

    def test_invalidates_on_experiment_and_params(self, config):
        assert cache_key("dse.point", config) != cache_key(
            "maxpolymem.validate", config
        )
        assert cache_key("x", config, {"rows": 8}) != cache_key(
            "x", config, {"rows": 16}
        )

    def test_enum_and_mapping_canonicalization(self):
        a = cache_key("x", {"scheme": Scheme.ReRo, "n": (1, 2)})
        b = cache_key("x", {"scheme": "ReRo", "n": [1, 2]})
        assert a == b


class TestResultCache:
    def test_roundtrip(self, cache):
        key = cache_key("t", None, {"i": 1})
        assert cache.get(key) is MISS
        value = {"mbps": 15301.5, "nested": {"ok": True}, "seq": [1, 2, 3]}
        cache.put(key, value)
        assert key in cache
        assert cache.get(key) == value
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_none_distinct_from_miss(self, cache):
        key = cache_key("t", None, {"i": 2})
        cache.put(key, None)
        assert cache.get(key) is None
        assert cache.get(key) is not MISS

    def test_corrupted_entry_recovers(self, cache):
        key = cache_key("t", None, {"i": 3})
        cache.put(key, {"v": 1})
        path = cache.path_for(key)
        path.write_text("{ not json at all")
        assert cache.get(key) is MISS
        assert not path.exists()  # evicted, next put recreates it
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}

    def test_truncated_entry_recovers(self, cache):
        key = cache_key("t", None, {"i": 4})
        cache.put(key, {"v": list(range(100))})
        path = cache.path_for(key)
        path.write_text(path.read_text()[:20])
        assert cache.get(key) is MISS

    def test_foreign_or_mismatched_entry_recovers(self, cache):
        key = cache_key("t", None, {"i": 5})
        other = cache_key("t", None, {"i": 6})
        cache.put(other, {"v": "other"})
        # copy the other entry under the wrong key: detected and evicted
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(cache.path_for(other).read_text())
        assert cache.get(key) is MISS
        assert cache.get(other) == {"v": "other"}
        # valid JSON without the envelope is also a miss
        path.write_text(json.dumps({"value": 42}))
        assert cache.get(key) is MISS

    def test_corrupted_entry_never_crashes_a_sweep(self, cache, config):
        from repro.dse.explore import evaluate_point

        task = SweepTask("dse.point", evaluate_point, config)
        first = run_sweep([task], cache=cache)
        assert first.n_computed == 1
        cache.path_for(task.cache_key()).write_text("\x00garbage")
        again = run_sweep([task], cache=cache)
        assert again.n_computed == 1  # recomputed, no exception
        assert again.payload_json() == first.payload_json()

    def test_len_and_clear(self, cache):
        for i in range(5):
            cache.put(cache_key("t", None, {"i": i}), i)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0


class TestBatchedInterface:
    """get_many/put_many must be observably identical to get/put loops
    (the exec runtime uses the batched forms; these pin the parity)."""

    def _keys(self, n):
        return [cache_key("t", None, {"i": i}) for i in range(n)]

    def test_put_many_then_get_parity(self, cache, tmp_path):
        keys = self._keys(6)
        cache.put_many({k: {"i": i} for i, k in enumerate(keys)})
        single = ResultCache(tmp_path / "single")
        for i, k in enumerate(keys):
            single.put(k, {"i": i})
        for k in keys:
            assert cache.get(k) == single.get(k)
            assert cache.path_for(k).read_text() == single.path_for(k).read_text()

    def test_get_many_hits_misses_and_counters(self, cache):
        keys = self._keys(8)
        for i, k in enumerate(keys[:5]):
            cache.put(k, {"i": i})
        got = cache.get_many(keys)
        assert set(got) == set(keys[:5])
        assert [got[k]["i"] for k in keys[:5]] == [0, 1, 2, 3, 4]
        assert cache.hits == 5 and cache.misses == 3

    def test_get_many_empty_and_cold_dir(self, cache):
        assert cache.get_many([]) == {}
        keys = self._keys(4)
        assert cache.get_many(keys) == {}  # directory does not exist yet
        assert cache.misses == 4

    def test_get_many_evicts_corrupted_like_get(self, cache):
        keys = self._keys(3)
        for i, k in enumerate(keys):
            cache.put(k, {"i": i})
        cache.path_for(keys[1]).write_text("{ not json")
        got = cache.get_many(keys)
        assert set(got) == {keys[0], keys[2]}
        assert not cache.path_for(keys[1]).exists()  # evicted

    def test_batched_equals_single_key_api(self, cache, tmp_path):
        """End to end: a sweep persisted via put_many resolves identically
        through get and get_many."""
        keys = self._keys(10)
        values = {k: {"payload": [i, i * i]} for i, k in enumerate(keys)}
        cache.put_many(values)
        assert cache.get_many(keys) == values
        assert {k: cache.get(k) for k in keys} == values


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"
