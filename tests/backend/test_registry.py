"""Backend registry: names, caching, and the REPRO_BACKEND default."""

import pytest

from repro.backend import (
    DeviceBackend,
    backend_names,
    base,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.core.exceptions import ConfigurationError


class TestBuiltins:
    def test_builtin_names_registered(self):
        names = backend_names()
        for name in ("vectis", "lx240t", "dram", "hbm2", "dual-dfe"):
            assert name in names

    def test_instances_cached(self):
        assert get_backend("vectis") is get_backend("vectis")
        assert get_backend("dram") is get_backend("dram")

    def test_instance_passthrough(self):
        be = get_backend("vectis")
        assert get_backend(be) is be

    def test_every_builtin_resolves_to_a_backend(self):
        for name in backend_names():
            be = get_backend(name)
            assert isinstance(be, DeviceBackend)
            assert be.name == name
            desc = be.describe()
            assert desc["name"] == name
            assert "kind" in desc

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ConfigurationError, match="vectis"):
            get_backend("no-such-substrate")


class TestDefaultSelection:
    def test_default_is_vectis(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "vectis"
        assert get_backend().name == "vectis"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dram")
        assert default_backend_name() == "dram"
        assert get_backend().name == "dram"

    def test_env_var_whitespace_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert default_backend_name() == "vectis"

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            default_backend_name()


class TestRegistration:
    @pytest.fixture
    def scratch_name(self):
        name = "test-scratch-backend"
        yield name
        base._FACTORIES.pop(name, None)
        base._INSTANCES.pop(name, None)

    def test_register_and_resolve(self, scratch_name):
        sentinel = get_backend("vectis")
        register_backend(scratch_name, lambda: sentinel)
        assert scratch_name in backend_names()
        assert get_backend(scratch_name) is sentinel

    def test_duplicate_registration_raises(self, scratch_name):
        register_backend(scratch_name, lambda: get_backend("vectis"))
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(scratch_name, lambda: get_backend("vectis"))

    def test_replace_drops_cached_instance(self, scratch_name):
        register_backend(scratch_name, lambda: get_backend("vectis"))
        assert get_backend(scratch_name).name == "vectis"
        register_backend(
            scratch_name, lambda: get_backend("dram"), replace=True
        )
        assert get_backend(scratch_name).name == "dram"
