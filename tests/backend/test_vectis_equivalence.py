"""Satellite 6: the Vectis backend IS the seed path, byte for byte.

The refactor moved the paper's hard-coded Vectis arithmetic behind the
``DeviceBackend`` protocol.  These hypothesis properties pin the default
``VectisBramBackend`` against the pre-refactor functions it wraps —
``polymem_bram_usage``, ``SynthesisModel.estimate``,
``table_iv_frequency`` — across the Table III configuration space, with
``==`` on every float (bitwise, not approx)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import get_backend
from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.dse.bandwidth import port_bandwidth_gbps
from repro.hw.bram import polymem_bram_usage
from repro.hw.calibration import table_iv_frequency
from repro.hw.fpga import VIRTEX6_SX475T
from repro.hw.synthesis import default_model

#: the Table III axes (capacity x lane grid x scheme x read ports)
configs = st.builds(
    PolyMemConfig,
    st.sampled_from([512 * KB, 1024 * KB, 2048 * KB, 4096 * KB]),
    p=st.shared(st.sampled_from([(2, 4), (2, 8)]), key="grid").map(
        lambda g: g[0]
    ),
    q=st.shared(st.sampled_from([(2, 4), (2, 8)]), key="grid").map(
        lambda g: g[1]
    ),
    scheme=st.sampled_from(list(Scheme)),
    read_ports=st.integers(min_value=1, max_value=4),
)


@settings(max_examples=200, deadline=None)
@given(configs)
def test_bram_budget_is_seed_arithmetic(cfg):
    be = get_backend("vectis")
    budget = be.bram_budget(cfg)
    seed = polymem_bram_usage(cfg, VIRTEX6_SX475T.bram36)
    assert budget == seed
    assert budget.data_blocks == seed.data_blocks
    assert budget.infra_blocks == seed.infra_blocks


@settings(max_examples=200, deadline=None)
@given(configs)
def test_synthesis_report_is_seed_model(cfg):
    be = get_backend("vectis")
    mine = be.synthesis(cfg)
    seed = default_model(VIRTEX6_SX475T.name).estimate(cfg)
    assert mine.fmax_mhz == seed.fmax_mhz
    assert mine.logic_pct == seed.logic_pct
    assert mine.lut_pct == seed.lut_pct
    assert mine.bram_pct == seed.bram_pct
    assert mine.feasible == seed.feasible


@settings(max_examples=200, deadline=None)
@given(configs)
def test_paper_clock_is_table_iv(cfg):
    be = get_backend("vectis")
    seed = table_iv_frequency(
        cfg.scheme, cfg.capacity_bytes // 1024, cfg.lanes, cfg.read_ports
    )
    assert be.paper_mhz(cfg) == seed
    expected_clock = (
        seed
        if seed is not None
        else default_model(VIRTEX6_SX475T.name).estimate(cfg).fmax_mhz
    )
    assert be.clock_mhz(cfg) == expected_clock


@settings(max_examples=200, deadline=None)
@given(configs)
def test_peak_bandwidth_is_seed_formula(cfg):
    """The backend's Fig. 4/5 peaks reuse ``port_bandwidth_gbps`` itself,
    so the floats are the seed's bit for bit (same operand order)."""
    be = get_backend("vectis")
    clock = be.clock_mhz(cfg)
    assert be.peak_write_gbps(cfg) == port_bandwidth_gbps(cfg, clock)
    assert be.peak_read_gbps(cfg) == (
        port_bandwidth_gbps(cfg, clock) * cfg.read_ports
    )


@settings(max_examples=50, deadline=None)
@given(configs)
def test_feasibility_matches_budget_and_logic(cfg):
    be = get_backend("vectis")
    verdict = be.feasibility(cfg)
    budget = polymem_bram_usage(cfg, VIRTEX6_SX475T.bram36)
    logic = default_model(VIRTEX6_SX475T.name).logic_pct(cfg)
    assert verdict.feasible == (budget.feasible and logic <= 100.0)
    assert verdict.utilization == budget.utilization
