"""The DRAM burst/row-buffer traffic model and its backend wrapper."""

import numpy as np
import pytest

from repro.backend import AddressStream, get_backend
from repro.backend.dram import (
    DDR3_LMEM,
    HBM2_STACK,
    DramChannelBackend,
    DramChannelModel,
)
from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme

#: one channel, no interleaving — burst/row arithmetic is easy to count
ONE_CHANNEL = DramChannelModel(
    name="one-channel",
    channels=1,
    channel_gbps=8.0,
    row_bytes=1024,
    burst_bytes=64,
    interleave_bytes=64,
    row_miss_ns=40.0,
    capacity_bytes=1 << 30,
)


def cfg(capacity_kb=512):
    return PolyMemConfig(capacity_kb * KB, p=2, q=4, scheme=Scheme.ReRo)


class TestTrafficCounting:
    def test_sequential_moves_only_useful_bytes(self):
        """8 words of 8 B per 64 B burst: sequential wastes nothing."""
        stream = AddressStream.sequential(1024)
        stats = ONE_CHANNEL.traffic(stream)
        assert stats.useful_bytes == 1024 * 8
        assert stats.transferred_bytes == stats.useful_bytes
        assert stats.bursts == 1024 * 8 // 64
        assert stats.achieved_gbps <= stats.peak_gbps

    def test_strided_pays_full_bursts(self):
        """One 8 B word per 64 B granule: 8x the wire for the same data."""
        stream = AddressStream.strided(256, stride=8)
        stats = ONE_CHANNEL.traffic(stream)
        assert stats.bursts == 256
        assert stats.transferred_bytes == 256 * 64 == 8 * stats.useful_bytes

    def test_row_misses_counted_per_row_change(self):
        """A 1024 B row holds 128 words; a 128-word stride changes rows on
        every single burst."""
        inside = ONE_CHANNEL.traffic(AddressStream.sequential(128))
        assert inside.row_misses == 1  # the cold first row only
        assert inside.row_hits == inside.bursts - 1
        hostile = ONE_CHANNEL.traffic(AddressStream.strided(64, stride=128))
        assert hostile.row_misses == hostile.bursts == 64
        assert hostile.row_hits == 0

    def test_time_is_wire_plus_misses(self):
        stream = AddressStream.strided(64, stride=128)
        stats = ONE_CHANNEL.traffic(stream)
        wire = stats.transferred_bytes / ONE_CHANNEL.channel_gbps
        assert stats.time_ns == pytest.approx(
            wire + 64 * ONE_CHANNEL.row_miss_ns
        )
        assert stats.achieved_gbps == pytest.approx(
            stats.useful_bytes / stats.time_ns
        )

    def test_channels_drain_in_parallel(self):
        """The same sequential stream finishes ~4x faster on 4 channels."""
        four = DramChannelModel(
            name="four-channel",
            channels=4,
            channel_gbps=8.0,
            row_bytes=1024,
            burst_bytes=64,
            interleave_bytes=64,
            row_miss_ns=40.0,
            capacity_bytes=1 << 30,
        )
        stream = AddressStream.sequential(4096)
        one = ONE_CHANNEL.traffic(stream)
        par = four.traffic(stream)
        assert par.time_ns < one.time_ns
        assert par.achieved_gbps > 2 * one.achieved_gbps

    def test_empty_stream(self):
        stats = ONE_CHANNEL.traffic(AddressStream(np.array([], dtype=np.int64)))
        assert stats.achieved_gbps == 0.0
        assert stats.bursts == 0

    def test_presets_are_consistent(self):
        assert DDR3_LMEM.peak_gbps == pytest.approx(38.4)
        assert HBM2_STACK.peak_gbps == pytest.approx(256.0)


class TestDramBackend:
    def test_feasibility_is_channel_capacity(self):
        be = DramChannelBackend(ONE_CHANNEL)
        assert be.feasibility(cfg(512)).feasible
        huge = cfg(2 * 1024 * 1024)  # 2 GB > 1 GB
        verdict = be.feasibility(huge)
        assert not verdict.feasible
        assert "capacity" in verdict.reason

    def test_fabric_supplies_clock_and_synthesis(self):
        be = get_backend("dram")
        c = cfg()
        assert be.clock_mhz(c) == be.fabric.clock_mhz(c)
        assert be.paper_mhz(c) == be.fabric.paper_mhz(c)
        assert be.synthesis(c).fmax_mhz == be.fabric.synthesis(c).fmax_mhz

    def test_peaks_are_the_channel_systems(self):
        assert get_backend("dram").peak_read_gbps(cfg()) == pytest.approx(38.4)
        assert get_backend("hbm2").peak_write_gbps(cfg()) == pytest.approx(256.0)

    def test_achieved_never_exceeds_peak(self):
        be = get_backend("hbm2")
        for stream in (
            AddressStream.sequential(1 << 12),
            AddressStream.strided(1 << 10, stride=64),
            AddressStream(np.random.default_rng(7).integers(0, 1 << 16, 4096)),
        ):
            stats = be.achieved_bandwidth(cfg(), stream)
            assert stats.achieved_gbps <= stats.peak_gbps + 1e-9

    def test_telemetry_counters_emitted(self):
        from repro.telemetry import Telemetry, session

        tel = Telemetry(label="test")
        with session(tel):
            get_backend("dram").achieved_bandwidth(
                cfg(), AddressStream.strided(512, stride=16)
            )
        snap = tel.snapshot()
        counters = snap["metrics"]["counters"]
        assert counters["backend.dram.bursts"] > 0
        assert counters["backend.dram.transferred_bytes"] >= counters[
            "backend.dram.useful_bytes"
        ]
