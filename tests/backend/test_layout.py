"""The burst-friendly layout pass and its effect on DRAM bandwidth."""

import numpy as np
import pytest

from repro.backend import AddressStream, get_backend, plan_layout
from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import AddressError
from repro.core.schemes import Scheme


def cfg():
    return PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo)


class TestPermutation:
    def test_strided_stream_becomes_sequential(self):
        stream = AddressStream.strided(256, stride=64)
        remapped = plan_layout(stream).remap(stream)
        np.testing.assert_array_equal(
            remapped.addresses, np.arange(256, dtype=np.int64)
        )

    def test_repeated_touches_share_one_slot(self):
        stream = AddressStream(np.array([40, 10, 40, 10, 20]))
        layout = plan_layout(stream)
        assert layout.touched_words == 3
        np.testing.assert_array_equal(
            layout.remap(stream).addresses, [0, 1, 0, 1, 2]
        )

    def test_untouched_words_pack_after_in_address_order(self):
        stream = AddressStream(np.array([3, 1]))
        layout = plan_layout(stream, n_words=6)
        # touched: 3 -> 0, 1 -> 1; untouched 0, 2, 4, 5 -> 2, 3, 4, 5
        np.testing.assert_array_equal(layout.new_of_old, [2, 1, 3, 0, 4, 5])

    def test_apply_restore_roundtrip(self):
        stream = AddressStream.strided(128, stride=32)
        layout = plan_layout(stream)
        data = np.random.default_rng(3).integers(0, 1 << 30, layout.n_words)
        transformed = layout.apply(data)
        np.testing.assert_array_equal(layout.restore(transformed), data)

    def test_apply_places_words_in_touch_order(self):
        """The k-th distinct word the stream touches lands at offset k."""
        stream = AddressStream.strided(16, stride=8)
        layout = plan_layout(stream)
        data = np.arange(layout.n_words, dtype=np.int64)
        transformed = layout.apply(data)
        np.testing.assert_array_equal(
            transformed[:16], stream.addresses[:16]
        )

    def test_remap_out_of_range_raises(self):
        layout = plan_layout(AddressStream(np.array([0, 1, 2])))
        with pytest.raises(AddressError):
            layout.remap(AddressStream(np.array([5])))

    def test_plan_shorter_than_stream_raises(self):
        with pytest.raises(AddressError):
            plan_layout(AddressStream(np.array([10])), n_words=4)

    def test_apply_size_mismatch_raises(self):
        layout = plan_layout(AddressStream.sequential(8))
        with pytest.raises(AddressError):
            layout.apply(np.zeros(9))


class TestDramGain:
    @pytest.mark.parametrize("backend", ["dram", "hbm2"])
    def test_layout_recovers_strided_bandwidth(self, backend):
        """ISSUE acceptance: >= 1.5x achieved bandwidth on the strided
        workload once the layout pass has run (it is far more in practice:
        the remapped stream is exactly sequential)."""
        be = get_backend(backend)
        stream = AddressStream.strided(1 << 14, stride=64)
        raw = be.achieved_bandwidth(cfg(), stream)
        laid = be.achieved_bandwidth(cfg(), plan_layout(stream).remap(stream))
        assert laid.achieved_gbps >= 1.5 * raw.achieved_gbps
        assert laid.transferred_bytes <= raw.transferred_bytes
