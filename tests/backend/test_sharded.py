"""The multi-DFE sharded logical PolyMem."""

import numpy as np
import pytest

from repro.backend import AddressStream, get_backend
from repro.backend.sharded import ShardedPolyMemBackend
from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import CapacityError, ConfigurationError
from repro.core.schemes import Scheme


def cfg(capacity_kb=1024):
    return PolyMemConfig(capacity_kb * KB, p=2, q=4, scheme=Scheme.ReRo)


class TestShardGeometry:
    def test_shard_config_halves_capacity(self):
        be = get_backend("dual-dfe")
        part = be.shard_config(cfg(1024))
        assert part.capacity_bytes == 512 * KB
        assert (part.p, part.q, part.read_ports) == (2, 4, 1)

    def test_indivisible_capacity_is_infeasible(self):
        three = ShardedPolyMemBackend(n_shards=3, name="tri")
        odd = cfg(1024)  # 1 MB does not split over 3 boards
        with pytest.raises(CapacityError):
            three.shard_config(odd)
        verdict = three.feasibility(odd)
        assert not verdict.feasible
        assert "shard" in verdict.reason

    def test_needs_two_boards(self):
        with pytest.raises(ConfigurationError):
            ShardedPolyMemBackend(n_shards=1)


class TestLockstep:
    def test_clock_is_slowest_shard(self):
        be = get_backend("dual-dfe")
        part = be.shard_config(cfg())
        assert be.clock_mhz(cfg()) == min(
            s.clock_mhz(part) for s in be.shards
        )

    def test_peak_bandwidth_is_additive(self):
        """Identical shards run at the single-board clock, so the logical
        peak is exactly N times one board's (at the shard capacity)."""
        be = get_backend("dual-dfe")
        part = be.shard_config(cfg())
        assert be.peak_write_gbps(cfg()) == pytest.approx(
            2 * be.shards[0].peak_write_gbps(part)
        )
        assert be.peak_read_gbps(cfg()) == pytest.approx(
            be.peak_write_gbps(cfg()) * cfg().read_ports
        )

    def test_feasibility_doubles_reach(self):
        """8 MB at 1 port exceeds one Vectis but shards over two."""
        big = cfg(8192)
        assert not get_backend("vectis").feasibility(big).feasible
        assert get_backend("dual-dfe").feasibility(big).feasible


class TestShardedStreams:
    def test_balanced_stream_uses_both_boards(self):
        be = get_backend("dual-dfe")
        c = cfg()
        words = c.total_words
        half = AddressStream.sequential(words // 4)
        spread = AddressStream(
            np.concatenate(
                [half.addresses, half.addresses + words // 2]
            )
        )
        balanced = be.achieved_bandwidth(c, spread)
        skewed = be.achieved_bandwidth(
            c, AddressStream.sequential(words // 2)
        )
        assert balanced.achieved_gbps > 1.5 * skewed.achieved_gbps
        assert balanced.achieved_gbps <= balanced.peak_gbps

    def test_parallel_links_split_payload(self):
        be = get_backend("dual-dfe")
        single = be.shards[0].link
        assert be.link.transfer_ns(1 << 20) < single.transfer_ns(1 << 20)
        assert be.link.signal_ns() == single.signal_ns()
