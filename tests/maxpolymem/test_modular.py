"""Tests for the modular Fig. 3 pipeline and fused/modular equivalence."""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxpolymem import WriteCommand, build_design, validate_design
from repro.maxpolymem.modular import build_modular_design


@pytest.fixture
def cfg():
    return PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=2)


class TestModularPipeline:
    def test_kernel_inventory_matches_fig3(self, cfg):
        """Write path: adapter+AGU+M+A+shuffle; per read port:
        adapter+AGU+M+A+addr shuffle+data shuffle; plus the banks."""
        design = build_modular_design(cfg)
        names = set(design.manager.kernels)
        assert "banks" in names
        for k in ("wr_adapter", "wr_agu", "wr_m", "wr_a", "wr_shuffle"):
            assert k in names
        for port in range(2):
            for k in (
                f"rd_adapter{port}",
                f"rd_agu{port}",
                f"rd_m{port}",
                f"rd_a{port}",
                f"rd_addr_shuffle{port}",
                f"rd_data_shuffle{port}",
            ):
                assert k in names
        assert len(names) == 5 + 2 * 6 + 1

    def test_validation_cycle_passes(self, cfg):
        design = build_design(cfg, style="modular", clock_source="model")
        report = validate_design(design)
        assert report.passed, report.mismatches

    def test_interconnect_overhead_positive(self, cfg):
        design = build_modular_design(cfg)
        assert design.manager.resources().interconnect_luts > 0


class TestFusedModularEquivalence:
    @pytest.mark.parametrize("scheme", [Scheme.ReRo, Scheme.RoCo, Scheme.ReTr])
    def test_same_answers(self, scheme):
        """Both styles produce identical read results for an identical
        command sequence — the §III-C claim that modularity only costs
        resources, not correctness."""
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=scheme)
        rng = np.random.default_rng(7)
        writes = []
        for bi in range(0, 8, 2):
            for bj in range(0, 8, 4):
                writes.append(
                    WriteCommand(
                        AccessRequest(PatternKind.RECTANGLE, bi, bj),
                        rng.integers(0, 1000, 8),
                    )
                )
        if scheme is Scheme.ReTr:
            reads = [AccessRequest(PatternKind.TRANSPOSED_RECTANGLE, 1, 1)]
        elif scheme is Scheme.RoCo:
            reads = [AccessRequest(PatternKind.COLUMN, 0, 3)]
        else:
            reads = [AccessRequest(PatternKind.ROW, 2, 1)]
        reads.append(AccessRequest(PatternKind.RECTANGLE, 0, 0))

        results = {}
        for style in ("fused", "modular"):
            design = build_design(cfg, style=style, clock_source="model")
            host = design.host()
            host.write_stream("wr_cmd", writes)
            host.run_kernel(max_cycles=2000)
            host.write_stream("rd_cmd0", reads)
            out = design.dfe.manager.host_output("rd_out0")
            host.run_kernel(
                until=lambda s=out: len(s) == len(reads), max_cycles=2000
            )
            results[style] = [np.asarray(v) for v in host.read_stream("rd_out0")]
        for a, b in zip(results["fused"], results["modular"]):
            assert (a == b).all()

    def test_modular_streams_at_full_rate(self, cfg):
        """Back-to-back reads still complete ~1 per cycle after the pipeline
        fills (stream interconnect must not throttle throughput)."""
        design = build_design(cfg, style="modular", clock_source="model")
        host = design.host()
        n = 64
        host.write_stream(
            "rd_cmd0", [AccessRequest(PatternKind.ROW, i % 16, 0) for i in range(n)]
        )
        out = design.dfe.manager.host_output("rd_out0")
        start = design.dfe.simulator.cycles
        host.run_kernel(until=lambda: len(out) == n, max_cycles=5000)
        elapsed = design.dfe.simulator.cycles - start
        assert elapsed <= n + 4 * design.read_latency + 10
