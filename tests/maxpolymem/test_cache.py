"""Tests for the Fig. 1 software-cache tiling driver."""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.exceptions import CapacityError
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxeler.lmem import LMem
from repro.maxpolymem.cache import SoftwareCache


def make_cache(matrix_rows=32, matrix_cols=64, tile_rows=16, tile_cols=32):
    lmem = LMem(capacity_bytes=1 << 22)
    cfg = PolyMemConfig(
        tile_rows * tile_cols * 8, p=2, q=4, scheme=Scheme.ReRo,
        rows=tile_rows, cols=tile_cols,
    )
    return SoftwareCache(cfg, lmem, (matrix_rows, matrix_cols), clock_mhz=120)


def load_matrix(cache, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.integers(0, 1 << 40, (cache.matrix_rows, cache.matrix_cols)).astype(np.uint64)
    cache.lmem.write(cache.base_addr, m.ravel())
    return m


class TestTiling:
    def test_tile_enumeration(self):
        cache = make_cache()
        tiles = list(cache.tiles())
        assert len(tiles) == (32 // 16) * (64 // 32)
        assert tiles[0].row0 == 0 and tiles[-1].col0 == 32

    def test_ragged_edges(self):
        cache = make_cache(matrix_rows=20, matrix_cols=40)
        tiles = list(cache.tiles())
        assert tiles[-1].rows == 4 and tiles[-1].cols == 8

    def test_stage_in_reads_correct_window(self):
        cache = make_cache()
        m = load_matrix(cache)
        tile = list(cache.tiles())[2]
        cache.stage_in(tile)
        got = cache.read(PatternKind.ROW, 0, 0)
        assert (got == m[tile.row0, tile.col0 : tile.col0 + 8]).all()

    def test_stage_out_writes_back(self):
        cache = make_cache()
        m = load_matrix(cache)
        tile = next(iter(cache.tiles()))
        cache.stage_in(tile)
        cache.write(PatternKind.ROW, 0, 0, np.arange(8))
        cache.stage_out()
        got, _ = cache.lmem.read(0, 8)
        assert (got == np.arange(8)).all()
        # rest of the matrix untouched
        got, _ = cache.lmem.read(cache.matrix_cols, 8)
        assert (got == m[1, :8]).all()

    def test_stage_out_without_tile(self):
        cache = make_cache()
        with pytest.raises(CapacityError, match="no tile"):
            cache.stage_out()

    def test_full_sweep_roundtrip(self):
        """Stage every tile in and out: LMem contents survive unchanged."""
        cache = make_cache(matrix_rows=20, matrix_cols=40)
        m = load_matrix(cache, seed=5)
        for tile in cache.tiles():
            cache.stage_in(tile)
            cache.stage_out()
        got, _ = cache.lmem.read(0, m.size)
        assert (got.reshape(m.shape) == m).all()

    def test_matrix_too_big(self):
        lmem = LMem(capacity_bytes=1 << 12)
        cfg = PolyMemConfig(16 * 32 * 8, p=2, q=4, rows=16, cols=32)
        with pytest.raises(CapacityError):
            SoftwareCache(cfg, lmem, (1 << 10, 1 << 10))


class TestTimings:
    def test_ledger_splits_time(self):
        cache = make_cache()
        load_matrix(cache)
        tile = next(iter(cache.tiles()))
        cache.stage_in(tile)
        for r in range(8):
            cache.read(PatternKind.ROW, r, 0)
        cache.stage_out()
        t = cache.timings
        assert t.stage_in_ns > 0 and t.stage_out_ns > 0
        assert t.compute_cycles == 8
        assert t.total_ns(120) == pytest.approx(
            t.stage_in_ns + t.stage_out_ns + 8 * 1e3 / 120
        )

    def test_reuse_drops_staging_fraction(self):
        """More on-chip reuse -> staging fraction falls: the Fig. 1 cache
        rationale."""
        fractions = []
        for reuse in (1, 16, 256):
            cache = make_cache()
            load_matrix(cache)
            tile = next(iter(cache.tiles()))
            cache.stage_in(tile)
            anchors = np.zeros(reuse * 16, dtype=np.int64)
            rows = np.tile(np.arange(16), reuse)
            cache.read_batch(PatternKind.ROW, rows, anchors)
            cache.stage_out()
            fractions.append(cache.timings.staging_fraction(120))
        assert fractions[0] > fractions[1] > fractions[2]

    def test_breakeven_reuse_positive(self):
        cache = make_cache()
        r = cache.breakeven_reuse()
        assert r > 0
        # staging two directions of a 16x32 tile at 38.4 GB/s against
        # 8 lanes @120 MHz: breakeven in the single-digit-to-tens range
        assert 0.5 < r < 100
