"""Tests for the §IV-A validation cycle harness itself."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.maxpolymem import build_design, validate_design


class TestValidateDesign:
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_all_schemes_pass(self, scheme):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=scheme)
        report = validate_design(build_design(cfg, clock_source="model"))
        assert report.passed, report.mismatches

    def test_multiport(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReCo, read_ports=3)
        report = validate_design(build_design(cfg, clock_source="model"))
        assert report.passed
        # reads happen on every port
        assert report.reads >= 3 * 4

    def test_16_lanes(self):
        cfg = PolyMemConfig(16 * KB, p=2, q=8, scheme=Scheme.ReRo)
        report = validate_design(build_design(cfg, clock_source="model"))
        assert report.passed

    def test_row_cap_limits_work(self):
        cfg = PolyMemConfig(64 * KB, p=2, q=4, scheme=Scheme.ReO)
        full = validate_design(build_design(cfg, clock_source="model"), max_rows=None)
        capped = validate_design(build_design(cfg, clock_source="model"), max_rows=8)
        assert capped.writes < full.writes
        assert capped.passed and full.passed

    def test_detects_corruption(self):
        """Sanity: a sabotaged memory is reported, not silently passed."""
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReO)
        design = build_design(cfg, clock_source="model")
        # corrupt one bank cell behind the design's back after the fill by
        # monkeypatching the kernel's memory load path
        original_step = design.kernel.memory.step

        state = {"poisoned": False}

        def poisoned_step(reads=None, write=None):
            out = original_step(reads=reads, write=write)
            if reads and not state["poisoned"]:
                state["poisoned"] = True
                for port in list(out):
                    out[port] = np.asarray(out[port]).copy()
                    out[port][0] ^= 0xFF
            return out

        design.kernel.memory.step = poisoned_step
        report = validate_design(design)
        assert not report.passed
        assert report.mismatches

    def test_report_label(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReTr)
        report = validate_design(build_design(cfg, clock_source="model"))
        assert "ReTr" in report.config_label
