"""Tests for the fused MAX-PolyMem kernel and design assembly."""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxpolymem import WriteCommand, build_design, clock_for


@pytest.fixture
def design():
    cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=2)
    return build_design(cfg, clock_source="model")


def write_rect(host, i, j, values):
    host.write_stream(
        "wr_cmd", [WriteCommand(AccessRequest(PatternKind.RECTANGLE, i, j), values)]
    )


class TestFusedKernel:
    def test_write_then_read(self, design):
        host = design.host()
        write_rect(host, 0, 0, np.arange(8))
        host.run_kernel(max_cycles=50)
        host.write_stream("rd_cmd0", [AccessRequest(PatternKind.ROW, 0, 0)])
        out = design.dfe.manager.host_output("rd_out0")
        host.run_kernel(until=lambda: len(out) == 1, max_cycles=200)
        (result,) = host.read_stream("rd_out0")
        assert result.tolist() == [0, 1, 2, 3, 0, 0, 0, 0]

    def test_read_latency_is_honoured(self, design):
        host = design.host()
        write_rect(host, 0, 0, np.arange(8))
        host.run_kernel(max_cycles=50)
        start = design.dfe.simulator.cycles
        host.write_stream("rd_cmd0", [AccessRequest(PatternKind.ROW, 0, 0)])
        out = design.dfe.manager.host_output("rd_out0")
        host.run_kernel(until=lambda: len(out) == 1, max_cycles=200)
        elapsed = design.dfe.simulator.cycles - start
        assert elapsed >= design.read_latency

    def test_throughput_one_read_per_cycle(self, design):
        """N pipelined reads complete in ~N + latency cycles, not N*latency."""
        host = design.host()
        n = 64
        reqs = [AccessRequest(PatternKind.ROW, i % 16, 0) for i in range(n)]
        host.write_stream("rd_cmd0", reqs)
        out = design.dfe.manager.host_output("rd_out0")
        start = design.dfe.simulator.cycles
        host.run_kernel(until=lambda: len(out) == n, max_cycles=5000)
        elapsed = design.dfe.simulator.cycles - start
        assert elapsed <= n + 2 * design.read_latency + 5

    def test_two_ports_stream_concurrently(self, design):
        host = design.host()
        n = 32
        host.write_stream(
            "rd_cmd0", [AccessRequest(PatternKind.ROW, 0, 0)] * n
        )
        host.write_stream(
            "rd_cmd1", [AccessRequest(PatternKind.ROW, 1, 0)] * n
        )
        out0 = design.dfe.manager.host_output("rd_out0")
        out1 = design.dfe.manager.host_output("rd_out1")
        start = design.dfe.simulator.cycles
        host.run_kernel(
            until=lambda: len(out0) == n and len(out1) == n, max_cycles=5000
        )
        elapsed = design.dfe.simulator.cycles - start
        # both ports together take the same wall clock as one port alone
        assert elapsed <= n + 2 * design.read_latency + 5

    def test_concurrent_read_write_cycle(self, design):
        """A read and a write issued in the same cycle both complete, and
        the read sees pre-write data."""
        host = design.host()
        write_rect(host, 0, 0, np.full(8, 5))
        host.run_kernel(max_cycles=50)
        host.write_stream("rd_cmd0", [AccessRequest(PatternKind.RECTANGLE, 0, 0)])
        write_rect(host, 0, 0, np.full(8, 9))
        out = design.dfe.manager.host_output("rd_out0")
        host.run_kernel(until=lambda: len(out) == 1, max_cycles=200)
        (result,) = host.read_stream("rd_out0")
        assert (np.asarray(result) == 5).all()
        host.write_stream("rd_cmd0", [AccessRequest(PatternKind.RECTANGLE, 0, 0)])
        host.run_kernel(until=lambda: len(out) == 1, max_cycles=200)
        (result,) = host.read_stream("rd_out0")
        assert (np.asarray(result) == 9).all()


class TestClockSelection:
    def test_paper_clock_on_grid(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReO)
        assert clock_for(cfg, "paper") == 202

    def test_paper_clock_off_grid_raises(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4)
        with pytest.raises(KeyError):
            clock_for(cfg, "paper")

    def test_auto_prefers_paper(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReO)
        assert clock_for(cfg, "auto") == 202

    def test_auto_falls_back_to_model(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4)
        assert clock_for(cfg, "auto") == pytest.approx(
            clock_for(cfg, "model")
        )

    def test_unknown_source(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4)
        with pytest.raises(ValueError):
            clock_for(cfg, "vibes")


class TestBuildDesign:
    def test_unknown_style(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4)
        with pytest.raises(ValueError):
            build_design(cfg, style="artisanal")

    def test_synthesis_report_attached(self, design):
        assert design.synthesis.fmax_mhz > 0
        assert design.synthesis.feasible

    def test_modular_has_more_resource_luts(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo)
        fused = build_design(cfg, style="fused", clock_source="model")
        modular = build_design(cfg, style="modular", clock_source="model")
        assert modular.resource_luts() > fused.resource_luts()

    def test_modular_has_lower_latency_than_fused_default(self):
        """The modular pipeline is 7 stages; the fused kernel models the
        synthesized 14-cycle latency."""
        cfg = PolyMemConfig(4 * KB, p=2, q=4)
        fused = build_design(cfg, style="fused", clock_source="model")
        modular = build_design(cfg, style="modular", clock_source="model")
        assert fused.read_latency == 14
        assert modular.read_latency == 7
