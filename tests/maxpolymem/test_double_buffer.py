"""Tests for the double-buffered (ping-pong) software cache."""

import numpy as np

from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxeler.lmem import LMem
from repro.maxpolymem.double_buffer import PingPongCache


def make_pingpong(matrix_rows=64, matrix_cols=128, seed=0):
    rng = np.random.default_rng(seed)
    lmem = LMem()
    m = rng.integers(0, 1 << 40, (matrix_rows, matrix_cols)).astype(np.uint64)
    lmem.write(0, m.ravel())
    cfg = PolyMemConfig(
        16 * 32 * 8, p=2, q=4, scheme=Scheme.ReRo, rows=16, cols=32
    )
    return PingPongCache(cfg, lmem, (matrix_rows, matrix_cols), clock_mhz=120), m


def row_sweeps(reuse):
    def compute(frame, tile):
        for _ in range(reuse):
            for r in range(tile.rows):
                frame.read_batch(
                    PatternKind.ROW, np.full(4, r), np.arange(4) * 8
                )

    return compute


class TestPingPong:
    def test_overlap_beats_serialized(self):
        pp, _ = make_pingpong()
        report = pp.run(row_sweeps(reuse=4))
        assert report.overlap_speedup > 1.0
        assert report.overlapped_ns < report.serialized_ns

    def test_overlap_bounded_by_two(self):
        """Perfect overlap halves the time at best."""
        pp, _ = make_pingpong()
        report = pp.run(row_sweeps(reuse=2))
        assert report.overlap_speedup <= 2.0

    def test_compute_bound_sweep_gains_more(self):
        """More reuse -> staging hides better behind compute."""
        s1 = make_pingpong()[0].run(row_sweeps(reuse=1)).overlap_speedup
        s8 = make_pingpong()[0].run(row_sweeps(reuse=8)).overlap_speedup
        assert s8 >= s1 * 0.9  # never collapses; typically grows

    def test_writeback_preserves_matrix(self):
        pp, m = make_pingpong(seed=3)
        pp.run(row_sweeps(reuse=1))
        back, _ = pp.lmem.read(0, m.size)
        assert (back.reshape(m.shape) == m).all()

    def test_compute_writes_reach_lmem(self):
        pp, m = make_pingpong(seed=4)

        def zero_first_row(frame, tile):
            frame.write_batch(
                PatternKind.ROW,
                np.zeros(4, dtype=np.int64),
                np.arange(4) * 8,
                np.zeros((4, 8), dtype=np.uint64),
            )

        pp.run(zero_first_row)
        back, _ = pp.lmem.read(0, 32)
        assert (back == 0).all()

    def test_tile_count(self):
        pp, _ = make_pingpong()
        report = pp.run(row_sweeps(1))
        assert report.tiles == (64 // 16) * (128 // 32)

    def test_cycles_accumulated(self):
        pp, _ = make_pingpong()
        report = pp.run(row_sweeps(reuse=2))
        per_tile = 2 * 16 * 4
        assert report.compute_cycles == report.tiles * per_tile

    def test_no_writeback_mode(self):
        pp, m = make_pingpong(seed=5)

        def scribble(frame, tile):
            frame.write_batch(
                PatternKind.ROW,
                np.zeros(4, dtype=np.int64),
                np.arange(4) * 8,
                np.zeros((4, 8), dtype=np.uint64),
            )

        pp.run(scribble, writeback=False)
        back, _ = pp.lmem.read(0, m.size)
        assert (back.reshape(m.shape) == m).all()  # LMem untouched
