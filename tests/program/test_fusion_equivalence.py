"""Property suite: the fused backend vs the interpreting reference.

``execute(..., backend="fused")`` claims bit-identical behaviour to
``backend="interp"`` — results, memory state, cycle/port statistics,
error behaviour (type and message), and the shared telemetry counters.
The fused path only skips the per-execution re-derivation of index
tables and collision structure; anything it cannot prove identical
(invalid cycles, describe-only writes, ``forbid`` collisions) falls back
to the interpreting replay path step by step.

The suite drives randomized programs — including the deliberately
invalid anchors, strides, multi-port reads and every collision policy of
the engine-equivalence strategy — through both backends on twin
memories, pins every production demo lowering, and unit-tests the
content-addressed kernel cache (reuse across executions, LRU eviction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.program.fuse as fuse
from repro.core.config import PolyMemConfig
from repro.core.exceptions import PolyMemError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme
from repro.program import AccessProgram, KernelCache, execute
from repro.program.lower import DEMO_NAMES, lower_demo
from repro.telemetry import Telemetry, session

LANE_GRIDS = [(2, 2), (2, 4)]

#: counters whose values are backend-independent by contract; the
#: backend-specific ones (polymem.cycles.replay vs .fused, replay.calls,
#: plan-cache traffic, program.fusion.*) are excluded by construction
SHARED_COUNTERS = (
    "polymem.parallel_accesses",
    "polymem.collision.forwarded",
    "program.executions",
    "program.segments",
    "program.traces",
    "program.trace_cycles",
    "program.compute_boundaries",
    "program.cycles",
)


def _memory(p, q, scheme, rows, cols, policy, read_ports, seed):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=p,
        q=q,
        scheme=scheme,
        rows=rows,
        cols=cols,
        read_ports=read_ports,
    )
    pm = PolyMem(cfg, collision_policy=policy)
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    return pm


def _run_backend(program, mems, backend):
    """Execute under a private telemetry session; returns
    ``(result, err, shared_counter_values)``."""
    tel = Telemetry(label=f"fusion-eq-{backend}")
    err = None
    res = None
    try:
        with session(tel):
            res = execute(program, mems, backend=backend)
    except PolyMemError as e:
        err = (type(e), str(e))
    counters = tel.snapshot()["metrics"]["counters"]
    shared = {name: counters.get(name, 0) for name in SHARED_COUNTERS}
    return res, err, shared


def _assert_same_state(mems_a, mems_b):
    assert set(mems_a) == set(mems_b)
    for name in mems_a:
        a, b = mems_a[name], mems_b[name]
        assert a.cycles == b.cycles
        assert a.write_stats == b.write_stats
        assert a.read_stats == b.read_stats
        assert np.array_equal(a.dump(), b.dump())


def _assert_same_env(env_a, env_b):
    assert set(env_a) == set(env_b)
    for tag, val in env_a.items():
        other = env_b[tag]
        if isinstance(val, np.ndarray):
            assert np.array_equal(val, other), tag
        else:
            assert np.all(val == other), tag


@st.composite
def program_cases(draw):
    p, q = draw(st.sampled_from(LANE_GRIDS))
    lanes = p * q
    rows = cols = lanes * 4
    scheme = draw(st.sampled_from(list(Scheme)))
    policy = draw(st.sampled_from(PolyMem.COLLISION_POLICIES))
    read_ports = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2**32))
    n_ops = draw(st.integers(1, 6))
    ops = []
    for _ in range(n_ops):
        choice = draw(
            st.sampled_from(["read", "read", "read", "write", "write",
                             "compute", "barrier"])
        )
        if choice in ("compute", "barrier"):
            ops.append((choice,))
            continue
        n = draw(st.integers(1, 5))
        # mostly valid anchors; -1 and rows-1 exercise the error and
        # fallback paths (invalid cycles stay on the interp path even
        # under backend="fused")
        anchors = st.lists(
            st.integers(-1, rows - 1), min_size=n, max_size=n
        )
        kind = draw(st.sampled_from(list(PatternKind)))
        stride = draw(st.sampled_from([1, 1, 1, 2]))
        ai = np.asarray(draw(anchors), dtype=np.int64)
        aj = np.asarray(draw(anchors), dtype=np.int64)
        if choice == "read":
            port = draw(st.integers(0, read_ports - 1))
            ops.append(("read", kind, ai, aj, port, stride))
        else:
            values = np.random.default_rng(
                draw(st.integers(0, 2**32))
            ).integers(0, 2**63, size=(n, lanes), dtype=np.uint64)
            ops.append(("write", kind, ai, aj, values, stride))
    return (p, q, scheme, rows, cols, policy, read_ports, seed, ops)


def _build_program(ops):
    prog = AccessProgram("fuzz")
    tag_i = 0
    for op in ops:
        if op[0] == "read":
            _, kind, ai, aj, port, stride = op
            prog.read(kind, ai, aj, port=port, stride=stride,
                      tag=f"t{tag_i}")
            tag_i += 1
        elif op[0] == "write":
            _, kind, ai, aj, values, stride = op
            prog.write(kind, ai, aj, values=values, stride=stride)
        elif op[0] == "compute":
            prog.compute(lambda env: {}, label="nop")
        else:
            prog.barrier()
    return prog


class TestFusedMatchesInterp:
    @given(program_cases())
    @settings(max_examples=80, deadline=None)
    def test_randomized_programs(self, case):
        p, q, scheme, rows, cols, policy, read_ports, seed, ops = case
        args = (p, q, scheme, rows, cols, policy, read_ports, seed)
        pm_fused = _memory(*args)
        pm_interp = _memory(*args)
        prog = _build_program(ops)
        res_f, err_f, tel_f = _run_backend(
            prog, {"default": pm_fused}, "fused"
        )
        res_i, err_i, tel_i = _run_backend(
            prog, {"default": pm_interp}, "interp"
        )
        assert err_f == err_i
        _assert_same_state({"d": pm_fused}, {"d": pm_interp})
        assert tel_f == tel_i
        if err_f is None:
            _assert_same_env(res_f.env, res_i.env)
            assert res_f.report.cycles == res_i.report.cycles
            assert res_f.report == res_i.report


class TestProductionLowerings:
    """Every production demo runs bit-identically on both backends."""

    DEMOS = [n for n in DEMO_NAMES if n != "stream_copy"]  # describe-only

    @pytest.mark.parametrize("name", DEMOS)
    def test_demo_fused_matches_interp(self, name):
        prog_f, mems_f = lower_demo(name)
        prog_i, mems_i = lower_demo(name)
        res_f, err_f, tel_f = _run_backend(prog_f, mems_f, "fused")
        res_i, err_i, tel_i = _run_backend(prog_i, mems_i, "interp")
        assert err_f is None and err_i is None
        _assert_same_state(mems_f, mems_i)
        assert tel_f == tel_i
        _assert_same_env(res_f.env, res_i.env)
        assert res_f.report == res_i.report


def _square_read_program(rows, seed, tag="out"):
    """A fully fusable read+write stream over one memory."""
    rng = np.random.default_rng(seed)
    n = 16
    ai = rng.integers(0, rows, size=n, dtype=np.int64)
    aj = np.zeros(n, dtype=np.int64)
    values = rng.integers(0, 2**63, size=(n, 8), dtype=np.uint64)
    prog = AccessProgram("cache-case")
    prog.read(PatternKind.ROW, ai, aj, tag=tag)
    prog.write(PatternKind.ROW, ai, aj, values=values)
    return prog


class TestKernelCache:
    def _memory(self):
        return _memory(2, 4, Scheme.ReRo, 32, 32, "read_first", 1, 7)

    def test_reuse_across_executions(self, monkeypatch):
        cache = KernelCache(maxsize=8)
        monkeypatch.setattr(fuse, "kernel_cache", cache)
        prog = _square_read_program(32, seed=1)
        execute(prog, self._memory(), backend="fused")
        assert (cache.hits, cache.misses) == (0, 1)
        # structurally identical program, different data: one hit
        execute(prog, self._memory(), backend="fused")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_structure_misses(self, monkeypatch):
        cache = KernelCache(maxsize=8)
        monkeypatch.setattr(fuse, "kernel_cache", cache)
        execute(_square_read_program(32, seed=1), self._memory(),
                backend="fused")
        # different anchors -> different content address
        execute(_square_read_program(32, seed=2), self._memory(),
                backend="fused")
        assert (cache.hits, cache.misses) == (0, 2)

    def test_lru_eviction_and_refill(self, monkeypatch):
        cache = KernelCache(maxsize=1)
        monkeypatch.setattr(fuse, "kernel_cache", cache)
        prog_a = _square_read_program(32, seed=1)
        prog_b = _square_read_program(32, seed=2)
        execute(prog_a, self._memory(), backend="fused")  # miss, resident
        execute(prog_b, self._memory(), backend="fused")  # miss, evicts a
        assert cache.evictions == 1
        assert len(cache) == 1
        # a was evicted: rebuilt (miss), which in turn evicts b
        execute(prog_a, self._memory(), backend="fused")
        assert cache.misses == 3 and cache.hits == 0
        assert cache.evictions == 2
        # results stay correct through eviction churn
        pm = self._memory()
        res = execute(prog_a, pm, backend="fused")
        ref = execute(prog_a, self._memory(), backend="interp")
        _assert_same_env(res.env, ref.env)

    def test_kernels_hold_no_data(self, monkeypatch):
        """A cached kernel is valid for any memory contents."""
        cache = KernelCache(maxsize=4)
        monkeypatch.setattr(fuse, "kernel_cache", cache)
        prog = _square_read_program(32, seed=3)
        execute(prog, self._memory(), backend="fused")
        pm_hit = _memory(2, 4, Scheme.ReRo, 32, 32, "read_first", 1, 99)
        pm_ref = _memory(2, 4, Scheme.ReRo, 32, 32, "read_first", 1, 99)
        res = execute(prog, pm_hit, backend="fused")
        ref = execute(prog, pm_ref, backend="interp")
        assert cache.hits == 1
        _assert_same_env(res.env, ref.env)
        _assert_same_state({"d": pm_hit}, {"d": pm_ref})

    def test_counters_reach_telemetry(self, monkeypatch):
        cache = KernelCache(maxsize=8)
        monkeypatch.setattr(fuse, "kernel_cache", cache)
        prog = _square_read_program(32, seed=4)
        tel = Telemetry(label="kernel-cache")
        with session(tel):
            execute(prog, self._memory(), backend="fused")
            execute(prog, self._memory(), backend="fused")
        c = tel.snapshot()["metrics"]["counters"]
        assert c["program.fusion.kernel_cache.misses"] == 1
        assert c["program.fusion.kernel_cache.hits"] == 1
        assert c["program.fusion.groups"] == 2
        assert c["program.fusion.steps"] >= 1
