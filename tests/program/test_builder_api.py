"""The redesigned builder surface and its deprecation shims.

``repro.program.build`` is the one entry point for program
construction; every pre-builder ``*_program`` free function must keep
working as a thin shim that emits ``DeprecationWarning`` and forwards
to the same lowering.
"""

import numpy as np
import pytest

from repro.core.exceptions import ProgramError
from repro.core.patterns import PatternKind
from repro.program import BuiltProgram, ProgramBuilder, SPEC_NAMES, build


def _matrix(n=8):
    return np.arange(n * n, dtype=np.uint64).reshape(n, n)


class TestBuild:
    def test_kernel_spec_runs(self):
        a = _matrix()
        built = build("kernel.matmul", a=a, b=a)
        assert isinstance(built, BuiltProgram)
        assert np.array_equal(built.run()["c"], a @ a)

    def test_demo_name_resolves(self):
        built = build("matmul")
        res = built.run()
        assert res.report.cycles == built.compile().access_cycles

    def test_demo_rejects_parameters(self):
        with pytest.raises(ProgramError, match="takes no parameters"):
            build("matmul", a=_matrix())

    def test_unknown_spec(self):
        with pytest.raises(ProgramError, match="unknown program spec"):
            build("kernel.nope")

    def test_backend_override_threads_through(self):
        a = _matrix()
        fused = build("kernel.matmul", a=a, b=a, backend="fused").run()
        interp = build("kernel.matmul", a=a, b=a, backend="interp").run()
        assert np.array_equal(fused["c"], interp["c"])
        assert fused.report == interp.report

    def test_describe_only_spec_refuses_to_run(self):
        from repro.program.lower import lower_demo

        program, _ = lower_demo("stream_copy")
        built = build(program)
        assert built.mems == {}
        with pytest.raises(ProgramError, match="no bound memories"):
            built.run()

    def test_spec_names_all_resolve(self):
        assert "kernel.matmul" in SPEC_NAMES
        assert len(SPEC_NAMES) == len(set(SPEC_NAMES))


class TestProgramBuilder:
    def test_fluent_build_and_run(self):
        from repro.kernels.reduction import load_matrix

        pm = load_matrix(_matrix())
        n = pm.rows
        ai = np.arange(n, dtype=np.int64)
        aj = np.zeros(n, dtype=np.int64)
        res = (
            ProgramBuilder("rows")
            .read(PatternKind.ROW, ai, aj, tag="rows")
            .compute(lambda env: {"s": env["rows"].sum(axis=1)}, label="sum")
            .using(pm)
            .run()
        )
        assert np.array_equal(res["s"], _matrix().sum(axis=1))

    def test_build_through_build(self):
        builder = ProgramBuilder("empty").barrier()
        built = build(builder, backend="interp")
        assert built.backend == "interp"
        assert len(built.program) == 1


class TestDeprecationShims:
    """Every old name warns and forwards to the identical lowering."""

    def test_kernel_shims(self):
        a = _matrix()
        from repro.kernels.jacobi import jacobi_program
        from repro.kernels.matmul import matmul_program
        from repro.kernels.reduction import (
            load_matrix,
            reduce_columns_program,
            reduce_rows_program,
        )
        from repro.kernels.stencil import stencil_program
        from repro.kernels.transpose import transpose_program

        with pytest.warns(DeprecationWarning, match="matmul_program"):
            prog, _ = matmul_program(a, a)
        assert prog.name == "matmul"
        with pytest.warns(DeprecationWarning, match="stencil_program"):
            prog, _ = stencil_program(a, np.ones((3, 3), np.uint64))
        assert prog.name == "stencil"
        with pytest.warns(DeprecationWarning, match="jacobi_program"):
            prog, _ = jacobi_program(np.zeros((8, 8), np.float64), 1)
        assert prog.name.startswith("jacobi")
        with pytest.warns(DeprecationWarning, match="transpose_program"):
            prog, _ = transpose_program(a)
        assert prog.name == "transpose"
        pm = load_matrix(a)
        with pytest.warns(DeprecationWarning, match="reduce_rows_program"):
            assert reduce_rows_program(pm).name == "reduce_rows"
        with pytest.warns(DeprecationWarning, match="reduce_columns_program"):
            assert reduce_columns_program(pm).name == "reduce_columns"

    def test_schedule_shim(self):
        from repro.schedule import customize, row_trace
        from repro.schedule.executor import schedule_program

        trace = row_trace(4, 32)
        best = customize(trace, lane_grids=[(2, 4)]).best
        with pytest.warns(DeprecationWarning, match="schedule_program"):
            prog = schedule_program(best)
        assert prog.name == f"schedule:{best.trace_name}"

    def test_stream_shim(self):
        from repro.core.config import PolyMemConfig
        from repro.core.schemes import Scheme
        from repro.stream_bench.controller import Job, Mode, StreamController

        config = PolyMemConfig(
            12 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
            rows=12, cols=32,
        )
        ctrl = StreamController("controller", config)
        job = Job(Mode.COPY, vectors=8)
        with pytest.warns(DeprecationWarning, match="job_program"):
            prog = ctrl.job_program(job)
        assert prog is not None
