"""Unit tests for the access-program IR and its pass pipeline."""

import numpy as np
import pytest

from repro.core.exceptions import ProgramError
from repro.core.patterns import PatternKind
from repro.program import (
    AccessProgram,
    Barrier,
    Compute,
    ParallelRead,
    ParallelWrite,
    compile_program,
    validate_program,
)

R = PatternKind.ROW
C = PatternKind.COLUMN
A4 = np.arange(4, dtype=np.int64)
Z4 = np.zeros(4, dtype=np.int64)


class TestIrConstruction:
    def test_builder_chains_and_counts(self):
        prog = (
            AccessProgram("demo")
            .read(R, A4, Z4, tag="x")
            .compute(lambda env: {"y": env["x"]}, label="id")
            .write(R, A4, Z4, values=np.zeros((4, 8), dtype=np.uint64))
            .barrier("done")
        )
        assert len(prog) == 4
        assert len(prog.access_ops) == 2
        assert prog.access_cycles == 8

    def test_scalar_anchors_broadcast(self):
        op = ParallelRead(R, 3, 5)
        assert op.n == 1
        assert op.uniform

    def test_anchor_length_mismatch(self):
        with pytest.raises(ProgramError):
            AccessProgram("bad").read(R, A4, np.zeros(3, dtype=np.int64))

    def test_per_cycle_kinds(self):
        op = ParallelRead([R, C, R, C], A4, Z4)
        assert not op.uniform
        assert op.kind_seq() == [R, C, R, C]

    def test_per_cycle_kind_count_mismatch(self):
        with pytest.raises(ProgramError):
            ParallelRead([R, C], A4, Z4)

    def test_validate_rejects_foreign_ops(self):
        prog = AccessProgram("bad")
        prog.ops.append("not-an-op")
        with pytest.raises(ProgramError):
            validate_program(prog)


class TestCoalescing:
    def test_same_port_reads_concatenate(self):
        """The matmul shape: ROW then COLUMN on port 0 become one
        heterogeneous trace."""
        prog = AccessProgram("mm").read(R, A4, Z4).read(C, A4, Z4)
        compiled = compile_program(prog)
        assert compiled.n_traces == 1
        (step,) = compiled.segments[0].steps
        assert step.n == 8

    def test_port_change_flushes(self):
        prog = AccessProgram("p").read(R, A4, Z4, port=0).read(R, A4, Z4, port=1)
        assert compile_program(prog).n_traces == 2

    def test_stride_change_flushes(self):
        prog = AccessProgram("s").read(R, A4, Z4).read(R, A4, Z4, stride=2)
        assert compile_program(prog).n_traces == 2

    def test_mem_change_flushes(self):
        prog = AccessProgram("m").read(R, A4, Z4).read(R, A4, Z4, mem="other")
        compiled = compile_program(prog)
        assert compiled.n_traces == 2
        assert compiled.mems == ("default", "other")

    def test_write_after_read_flushes(self):
        prog = (
            AccessProgram("wr")
            .read(R, A4, Z4)
            .write(R, A4, Z4, values=np.zeros((4, 8), dtype=np.uint64))
        )
        assert compile_program(prog).n_traces == 2

    def test_writes_concatenate(self):
        v = np.zeros((4, 8), dtype=np.uint64)
        prog = AccessProgram("ww").write(R, A4, Z4, values=v).write(
            R, A4, Z4, values=v
        )
        compiled = compile_program(prog)
        assert compiled.n_traces == 1
        (step,) = compiled.segments[0].steps
        assert step.n == 8 and step.write is not None

    def test_fused_reads_share_a_trace(self):
        prog = AccessProgram("f").read(R, A4, Z4, port=0).read(
            C, A4, Z4, port=1, fuse=True
        )
        compiled = compile_program(prog)
        assert compiled.n_traces == 1
        (step,) = compiled.segments[0].steps
        assert sorted(step.reads) == [0, 1]
        assert step.n == 4  # fused: parallel, not concatenated

    def test_fuse_needs_equal_lengths(self):
        prog = AccessProgram("f").read(R, A4, Z4, port=0).read(
            C, np.arange(3), np.zeros(3, dtype=np.int64), port=1, fuse=True
        )
        with pytest.raises(ProgramError):
            compile_program(prog)

    def test_fuse_needs_free_port(self):
        prog = AccessProgram("f").read(R, A4, Z4, port=0).read(
            C, A4, Z4, port=0, fuse=True
        )
        with pytest.raises(ProgramError):
            compile_program(prog)

    def test_fuse_without_open_group(self):
        prog = AccessProgram("f").read(R, A4, Z4, fuse=True)
        with pytest.raises(ProgramError):
            compile_program(prog)

    def test_fused_group_accepts_no_concat(self):
        prog = (
            AccessProgram("f")
            .read(R, A4, Z4, port=0)
            .read(C, A4, Z4, port=1, fuse=True)
            .read(R, A4, Z4, port=0)
        )
        assert compile_program(prog).n_traces == 2


class TestSegments:
    def test_compute_closes_segment(self):
        prog = (
            AccessProgram("seg")
            .read(R, A4, Z4, tag="x")
            .compute(lambda env: {}, label="mid")
            .read(R, A4, Z4, tag="y")
        )
        compiled = compile_program(prog)
        assert len(compiled.segments) == 2
        assert isinstance(compiled.segments[0].boundary, Compute)
        assert compiled.segments[1].boundary is None

    def test_barrier_closes_segment(self):
        prog = AccessProgram("seg").read(R, A4, Z4).barrier("b").read(R, A4, Z4)
        compiled = compile_program(prog)
        assert len(compiled.segments) == 2
        assert isinstance(compiled.segments[0].boundary, Barrier)

    def test_empty_program_compiles_to_one_segment(self):
        compiled = compile_program(AccessProgram("empty"))
        assert len(compiled.segments) == 1
        assert compiled.n_traces == 0
        assert compiled.access_cycles == 0

    def test_access_cycles_survive_compilation(self):
        prog = AccessProgram("n").read(R, A4, Z4).read(C, A4, Z4, port=1)
        assert compile_program(prog).access_cycles == prog.access_cycles == 8

    def test_describe_only_write_cannot_execute(self):
        prog = AccessProgram("d").write(R, A4, Z4)
        compiled = compile_program(prog)
        (step,) = compiled.segments[0].steps
        with pytest.raises(ProgramError, match="describe-only"):
            step.trace({})

    def test_ops_are_reprable(self):
        prog = (
            AccessProgram("r")
            .read(R, A4, Z4)
            .write(R, A4, Z4)
            .compute(lambda env: {}, label="c")
            .barrier("b")
        )
        for op in prog.ops:
            assert type(op).__name__ in repr(op) or repr(op)
        assert "AccessProgram" in repr(prog)
        assert isinstance(prog.ops[1], ParallelWrite)
