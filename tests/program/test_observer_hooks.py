"""Observer hook ordering, including the documented error contract.

Per the :class:`repro.program.engine.Observer` docstring, a replay error
aborts the program mid-hook sequence: hooks already fired stay fired and
``on_program_end`` is never called.
"""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.exceptions import PolyMemError
from repro.core.polymem import PolyMem
from repro.program import AccessProgram, Observer, execute
from repro.telemetry import Telemetry, deactivate, session


@pytest.fixture(autouse=True)
def no_leaked_session():
    deactivate()
    yield
    deactivate()


class RecordingObserver(Observer):
    def __init__(self):
        self.calls = []

    def on_program_start(self, compiled, mems):
        self.calls.append("program_start")

    def on_segment_start(self, segment):
        self.calls.append(f"segment_start:{segment.index}")

    def on_trace(self, segment, step, outputs, mem):
        self.calls.append("trace")

    def on_compute(self, segment, boundary, env):
        self.calls.append("compute")

    def on_segment_end(self, segment, env):
        self.calls.append(f"segment_end:{segment.index}")

    def on_program_end(self, result):
        self.calls.append("program_end")


def _memory():
    cfg = PolyMemConfig(4096, p=2, q=4, scheme="ReRo", rows=16, cols=32)
    pm = PolyMem(cfg)
    rng = np.random.default_rng(11)
    pm.load(rng.integers(0, 2**63, size=(16, 32), dtype=np.uint64))
    return pm


def _good_program():
    prog = AccessProgram("good")
    prog.read("row", [0], [0], tag="a")
    prog.compute(lambda env: {"done": 1}, label="finish")
    return prog


def _failing_program():
    prog = AccessProgram("bad")
    prog.read("row", [0], [0], tag="a")
    prog.barrier()
    # second segment: anchor far outside the 16x32 space -> replay error
    prog.read("row", [40], [0], tag="b")
    return prog


class TestHookOrdering:
    def test_successful_program_fires_every_hook_in_order(self):
        obs = RecordingObserver()
        execute(_good_program(), _memory(), observers=(obs,))
        assert obs.calls == [
            "program_start",
            "segment_start:0",
            "trace",
            "compute",
            "segment_end:0",
            "program_end",
        ]

    def test_replay_error_skips_on_program_end(self):
        obs = RecordingObserver()
        with pytest.raises(PolyMemError):
            execute(_failing_program(), _memory(), observers=(obs,))
        assert obs.calls == [
            "program_start",
            "segment_start:0",
            "trace",
            "segment_end:0",
            "segment_start:1",
        ]
        assert "program_end" not in obs.calls


class TestTelemetryOnErrorPaths:
    def test_aborted_program_leaves_spans_recoverable(self):
        with session(Telemetry(tracing=True)) as tel:
            with pytest.raises(PolyMemError):
                execute(_failing_program(), _memory())
        # program + segment spans were left open by the abort ...
        assert tel.tracer.open_spans == 2
        # ... and export closes them, flagged aborted
        doc = tel.tracer.to_chrome_trace()
        aborted = [
            e["name"]
            for e in doc["traceEvents"]
            if e.get("args", {}).get("aborted")
        ]
        assert "program:bad" in aborted
        assert "segment:1" in aborted

    def test_telemetry_observer_rides_active_session(self):
        with session(Telemetry()) as tel:
            execute(_good_program(), _memory())
        counters = tel.metrics.to_dict()["counters"]
        assert counters["program.executions"] == 1
        assert counters["program.traces"] == 1
        assert counters["program.compute_boundaries"] == 1
        assert counters["program.cycles"] > 0
