"""Property suite: the program engine vs architectural serial stepping.

``execute(program, polymem)`` claims bit-identical behaviour to issuing
every compiled cycle through ``PolyMem.step()`` one at a time — results,
memory state, cycle/port statistics, and error behaviour (type and
message) included.  The suite drives randomized programs through both
paths, and pins every production lowering (the five kernels, the PRF
machine, the schedule executor) to the same serial reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PolyMemConfig
from repro.core.exceptions import PolyMemError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme
from repro.program import AccessProgram, Compute, compile_program, execute
from repro.program.lower import DEMO_NAMES, lower_demo

LANE_GRIDS = [(2, 2), (2, 4)]


def _memory(p, q, scheme, rows, cols, policy, read_ports, seed):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=p,
        q=q,
        scheme=scheme,
        rows=rows,
        cols=cols,
        read_ports=read_ports,
    )
    pm = PolyMem(cfg, collision_policy=policy)
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    return pm


def _execute_serial(program, mems):
    """The independent reference: compile, then step() every cycle."""
    compiled = compile_program(program)
    env = {}
    start = {name: pm.cycles for name, pm in mems.items()}
    err = None
    try:
        for seg in compiled.segments:
            for step in seg.steps:
                trace = step.trace(env)
                pm = mems[step.mem]
                outs = {port: [] for port in trace.read_ports}
                for t in range(trace.n):
                    reads, write = trace.cycle_args(t)
                    res = pm.step(reads=reads, write=write)
                    for port in outs:
                        outs[port].append(res[port])
                outputs = {
                    port: np.stack(vals) for port, vals in outs.items()
                }
                for tag, port, lo, hi in step.bindings:
                    env[tag] = outputs[port][lo:hi]
            if isinstance(seg.boundary, Compute):
                product = seg.boundary.fn(env)
                if isinstance(product, dict):
                    env.update(product)
    except PolyMemError as e:
        err = (type(e), str(e))
    cycles = sum(pm.cycles - start[name] for name, pm in mems.items())
    return env, err, cycles


def _run_engine(program, mems):
    err = None
    res = None
    try:
        res = execute(program, mems)
    except PolyMemError as e:
        err = (type(e), str(e))
    return res, err


def _assert_same_state(mems_a, mems_b):
    assert set(mems_a) == set(mems_b)
    for name in mems_a:
        a, b = mems_a[name], mems_b[name]
        assert a.cycles == b.cycles
        assert a.write_stats == b.write_stats
        assert a.read_stats == b.read_stats
        assert np.array_equal(a.dump(), b.dump())


def _assert_same_env(env_a, env_b):
    assert set(env_a) == set(env_b)
    for tag, val in env_a.items():
        other = env_b[tag]
        if isinstance(val, np.ndarray):
            assert np.array_equal(val, other), tag
        else:
            assert np.all(val == other), tag


@st.composite
def program_cases(draw):
    p, q = draw(st.sampled_from(LANE_GRIDS))
    lanes = p * q
    rows = cols = lanes * 4
    scheme = draw(st.sampled_from(list(Scheme)))
    policy = draw(st.sampled_from(PolyMem.COLLISION_POLICIES))
    read_ports = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2**32))
    n_ops = draw(st.integers(1, 6))
    ops = []
    for _ in range(n_ops):
        choice = draw(
            st.sampled_from(["read", "read", "read", "write", "write",
                             "compute", "barrier"])
        )
        if choice in ("compute", "barrier"):
            ops.append((choice,))
            continue
        n = draw(st.integers(1, 5))
        # mostly valid anchors; -1 and rows-1 exercise the error paths
        anchors = st.lists(
            st.integers(-1, rows - 1), min_size=n, max_size=n
        )
        kind = draw(st.sampled_from(list(PatternKind)))
        stride = draw(st.sampled_from([1, 1, 1, 2]))
        ai = np.asarray(draw(anchors), dtype=np.int64)
        aj = np.asarray(draw(anchors), dtype=np.int64)
        if choice == "read":
            port = draw(st.integers(0, read_ports - 1))
            ops.append(("read", kind, ai, aj, port, stride))
        else:
            values = np.random.default_rng(
                draw(st.integers(0, 2**32))
            ).integers(0, 2**63, size=(n, lanes), dtype=np.uint64)
            ops.append(("write", kind, ai, aj, values, stride))
    return (p, q, scheme, rows, cols, policy, read_ports, seed, ops)


def _build_program(ops):
    prog = AccessProgram("fuzz")
    tag_i = 0
    for op in ops:
        if op[0] == "read":
            _, kind, ai, aj, port, stride = op
            prog.read(kind, ai, aj, port=port, stride=stride,
                      tag=f"t{tag_i}")
            tag_i += 1
        elif op[0] == "write":
            _, kind, ai, aj, values, stride = op
            prog.write(kind, ai, aj, values=values, stride=stride)
        elif op[0] == "compute":
            prog.compute(lambda env: {}, label="nop")
        else:
            prog.barrier()
    return prog


class TestEngineMatchesSerialStepping:
    @given(program_cases())
    @settings(max_examples=80, deadline=None)
    def test_randomized_programs(self, case):
        p, q, scheme, rows, cols, policy, read_ports, seed, ops = case
        args = (p, q, scheme, rows, cols, policy, read_ports, seed)
        pm_eng = _memory(*args)
        pm_ref = _memory(*args)
        prog = _build_program(ops)
        res, err_eng = _run_engine(prog, {"default": pm_eng})
        env_ref, err_ref, cycles_ref = _execute_serial(
            prog, {"default": pm_ref}
        )
        assert err_eng == err_ref
        _assert_same_state({"d": pm_eng}, {"d": pm_ref})
        if err_eng is None:
            _assert_same_env(res.env, env_ref)
            assert res.report.cycles == cycles_ref


class TestProductionLowerings:
    """Every caller's real lowering runs bit-identically on both paths."""

    DEMOS = [n for n in DEMO_NAMES if n != "stream_copy"]  # describe-only

    @pytest.mark.parametrize("name", DEMOS)
    def test_demo_engine_matches_serial(self, name):
        prog_a, mems_a = lower_demo(name)
        prog_b, mems_b = lower_demo(name)
        res, err = _run_engine(prog_a, mems_a)
        env_ref, err_ref, cycles_ref = _execute_serial(prog_b, mems_b)
        assert err is None and err_ref is None
        _assert_same_state(mems_a, mems_b)
        _assert_same_env(res.env, env_ref)
        assert res.report.cycles == cycles_ref

    @pytest.mark.parametrize("name", DEMOS)
    def test_demo_cycle_pin(self, name):
        """The report charges exactly the compiled access cycles."""
        prog, mems = lower_demo(name)
        compiled = compile_program(prog)
        res, err = _run_engine(prog, mems)
        assert err is None
        assert res.report.cycles == compiled.access_cycles

    def test_matmul_demo_is_numerically_right(self):
        from repro.kernels import matmul

        a = np.arange(8 * 8, dtype=np.uint64).reshape(8, 8)
        b = (np.arange(8 * 8, dtype=np.uint64) % 7).reshape(8, 8)
        c, rep = matmul(a, b)
        assert np.array_equal(c, a @ b)
        # 8 ROW accesses for A plus 64 COLUMN accesses for B
        assert rep.cycles == 8 + 64

    def test_prf_machine_pins(self):
        from repro.prf.machine import PrfMachine
        from repro.prf.registers import RegisterFile

        rf = RegisterFile(capacity_kb=4)
        m = PrfMachine(rf)
        ra = rf.define("R0", 4, 8)
        rb = rf.define("R1", 4, 8)
        rd = rf.define("R2", 4, 8)
        va = np.arange(32, dtype=np.float64).reshape(4, 8)
        vb = np.full((4, 8), 2.0)
        ra.store(va)
        rb.store(vb)
        m.vadd("R2", "R0", "R1")
        assert np.array_equal(rd.load(), va + vb)
        # 32 elements / 8 lanes on dual read ports: 4 streaming cycles
        assert m.stats.cycles == 4

    def test_schedule_executor_pin(self):
        from repro.schedule import customize, row_trace
        from repro.schedule.executor import execute_schedule

        trace = row_trace(4, 32)
        best = customize(trace, lane_grids=[(2, 4)]).best
        result = execute_schedule(trace, best)
        assert result.covered and result.data_correct
        assert result.matches_prediction
