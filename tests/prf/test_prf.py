"""Tests for the PRF compatibility layer (registers + vector ISA)."""

import numpy as np
import pytest

from repro.core.exceptions import PatternError
from repro.prf import PrfMachine, RegisterFile


@pytest.fixture
def rf():
    return RegisterFile(capacity_kb=4)


@pytest.fixture
def machine(rf):
    return PrfMachine(rf)


class TestRegisterFile:
    def test_define_and_roundtrip(self, rf):
        r = rf.define("R0", 4, 8)
        data = np.arange(32, dtype=np.float64).reshape(4, 8) / 7
        r.store(data)
        assert np.allclose(r.load(), data)

    def test_mixed_shapes_coexist(self, rf):
        """The PRF's point: registers of different shapes simultaneously."""
        shapes = [(4, 8), (1, 16), (8, 2), (2, 2)]
        rng = np.random.default_rng(0)
        data = {}
        for k, (r, c) in enumerate(shapes):
            reg = rf.define(f"R{k}", r, c)
            data[f"R{k}"] = rng.uniform(size=(r, c))
            reg.store(data[f"R{k}"])
        for name, want in data.items():
            assert np.allclose(rf[name].load(), want), name

    def test_resize_preserves_prefix(self, rf):
        rf.define("R0", 2, 8)
        rf["R0"].store(np.arange(16, dtype=np.float64).reshape(2, 8))
        rf.resize("R0", 4, 4)
        got = rf["R0"].load()
        assert got.shape == (4, 4)
        assert np.allclose(got.ravel(), np.arange(16))

    def test_resize_shrink_truncates(self, rf):
        rf.define("R0", 2, 8)
        rf["R0"].store(np.arange(16, dtype=np.float64).reshape(2, 8))
        rf.resize("R0", 1, 8)
        assert np.allclose(rf["R0"].load().ravel(), np.arange(8))

    def test_release_and_reuse(self, rf):
        rf.define("R0", 4, 8)
        rf.release("R0")
        assert "R0" not in rf
        rf.define("R0", 2, 4)  # name and storage reusable

    def test_duplicate_and_missing(self, rf):
        rf.define("R0", 2, 4)
        with pytest.raises(PatternError, match="already"):
            rf.define("R0", 2, 4)
        with pytest.raises(PatternError, match="not defined"):
            rf.release("R9")
        with pytest.raises(PatternError, match="not defined"):
            rf["R9"]

    def test_store_shape_check(self, rf):
        r = rf.define("R0", 2, 4)
        with pytest.raises(PatternError, match="expects"):
            r.store(np.zeros((4, 2)))


class TestVectorISA:
    def setup_regs(self, machine, shape=(2, 8), seed=1):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, shape)
        b = rng.uniform(-1, 1, shape)
        machine.rf.define("Ra", *shape)
        machine.rf.define("Rb", *shape)
        machine.rf.define("Rd", *shape)
        machine.rf["Ra"].store(a)
        machine.rf["Rb"].store(b)
        return a, b

    def test_vadd(self, machine):
        a, b = self.setup_regs(machine)
        machine.vadd("Rd", "Ra", "Rb")
        assert np.allclose(machine.rf["Rd"].load(), a + b)

    def test_vsub_vmul(self, machine):
        a, b = self.setup_regs(machine)
        machine.vsub("Rd", "Ra", "Rb")
        assert np.allclose(machine.rf["Rd"].load(), a - b)
        machine.vmul("Rd", "Ra", "Rb")
        assert np.allclose(machine.rf["Rd"].load(), a * b)

    def test_vaxpy_and_vscale(self, machine):
        a, b = self.setup_regs(machine)
        machine.vaxpy("Rd", 2.5, "Ra", "Rb")
        assert np.allclose(machine.rf["Rd"].load(), 2.5 * a + b)
        machine.vscale("Rd", -3.0, "Ra")
        assert np.allclose(machine.rf["Rd"].load(), -3.0 * a)

    def test_vdot_vsum(self, machine):
        a, b = self.setup_regs(machine)
        assert machine.vdot("Ra", "Rb") == pytest.approx(
            float(np.dot(a.ravel(), b.ravel()))
        )
        assert machine.vsum("Ra") == pytest.approx(float(a.sum()))

    def test_shape_mismatch_rejected(self, machine):
        machine.rf.define("Ra", 2, 8)
        machine.rf.define("Rb", 4, 4)
        machine.rf.define("Rd", 2, 8)
        with pytest.raises(PatternError, match="shape mismatch"):
            machine.vadd("Rd", "Ra", "Rb")

    def test_cycle_model_dual_port(self, machine):
        a, b = self.setup_regs(machine, shape=(2, 16))  # 32 elems, 4 vecs
        machine.vadd("Rd", "Ra", "Rb")
        assert machine.stats.cycles == 4  # both operands stream together

    def test_cycle_model_single_port(self):
        machine = PrfMachine(read_ports=1)
        rng = np.random.default_rng(2)
        machine.rf.define("Ra", 2, 16)
        machine.rf.define("Rb", 2, 16)
        machine.rf.define("Rd", 2, 16)
        machine.rf["Ra"].store(rng.uniform(size=(2, 16)))
        machine.rf["Rb"].store(rng.uniform(size=(2, 16)))
        machine.vadd("Rd", "Ra", "Rb")
        assert machine.stats.cycles == 8  # operands serialize

    def test_reduction_tail(self, machine):
        self.setup_regs(machine, shape=(2, 16))
        machine.vsum("Ra")
        assert machine.stats.cycles == 4 + 3  # 4 vectors + log2(8)

    def test_stats_log(self, machine):
        self.setup_regs(machine)
        machine.vadd("Rd", "Ra", "Rb")
        machine.vdot("Ra", "Rb")
        assert machine.stats.instructions == 2
        assert machine.stats.log[0].startswith("vadd")


class TestAxpyKernel:
    def test_daxpy_program(self):
        """A DAXPY over polymorphic registers: the PRF lineage's canonical
        building block (CG case study)."""
        machine = PrfMachine(RegisterFile(capacity_kb=4))
        n = 64
        rng = np.random.default_rng(5)
        x, y = rng.uniform(size=n), rng.uniform(size=n)
        machine.rf.define("X", 4, 16)
        machine.rf.define("Y", 4, 16)
        machine.rf.define("Z", 4, 16)
        machine.rf["X"].store(x.reshape(4, 16))
        machine.rf["Y"].store(y.reshape(4, 16))
        machine.vaxpy("Z", 1.5, "X", "Y")
        assert np.allclose(machine.rf["Z"].load().ravel(), 1.5 * x + y)
        # residual norm via the ISA
        machine.vsub("Z", "Z", "Y")
        machine.vscale("Z", 1 / 1.5, "Z")
        err = machine.vdot("Z", "Z") - float(np.dot(x, x))
        assert abs(err) < 1e-9
