"""Hypothesis fuzz: random PRF programs vs a NumPy register file."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prf import PrfMachine, RegisterFile

REGS = ["R0", "R1", "R2", "R3"]
SHAPE = (2, 8)


@st.composite
def programs(draw):
    n = draw(st.integers(1, 10))
    prog = []
    for _ in range(n):
        op = draw(st.sampled_from(["vadd", "vsub", "vmul", "vaxpy", "vscale", "vcopy"]))
        dst = draw(st.sampled_from(REGS))
        a = draw(st.sampled_from(REGS))
        b = draw(st.sampled_from(REGS))
        s = draw(st.floats(-2, 2, allow_nan=False))
        prog.append((op, dst, a, b, s))
    return prog


@given(
    programs(),
    st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_random_prf_programs(program, seed):
    rng = np.random.default_rng(seed)
    machine = PrfMachine(RegisterFile(capacity_kb=4))
    ref: dict[str, np.ndarray] = {}
    for name in REGS:
        machine.rf.define(name, *SHAPE)
        data = rng.uniform(-1, 1, SHAPE)
        machine.rf[name].store(data)
        ref[name] = data.copy()

    for op, dst, a, b, s in program:
        if op == "vadd":
            machine.vadd(dst, a, b)
            ref[dst] = ref[a] + ref[b]
        elif op == "vsub":
            machine.vsub(dst, a, b)
            ref[dst] = ref[a] - ref[b]
        elif op == "vmul":
            machine.vmul(dst, a, b)
            ref[dst] = ref[a] * ref[b]
        elif op == "vaxpy":
            machine.vaxpy(dst, s, a, b)
            ref[dst] = s * ref[a] + ref[b]
        elif op == "vscale":
            machine.vscale(dst, s, a)
            ref[dst] = s * ref[a]
        elif op == "vcopy":
            machine.vcopy(dst, a)
            ref[dst] = ref[a].copy()

    for name in REGS:
        assert np.allclose(machine.rf[name].load(), ref[name]), name
    # reductions agree too
    assert machine.vsum("R0") == np.float64(ref["R0"].sum()) or np.isclose(
        machine.vsum("R0"), ref["R0"].sum()
    )
    # cycle accounting is consistent: every instruction cost >= 1 cycle
    assert machine.stats.cycles >= machine.stats.instructions


@given(
    st.integers(1, 40),
    st.integers(1, 60),
    st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_software_cache_roundtrip_any_matrix(rows, cols, seed):
    """Tiling any matrix shape through the software cache is lossless."""
    from repro.core.config import PolyMemConfig
    from repro.core.schemes import Scheme
    from repro.maxeler.lmem import LMem
    from repro.maxpolymem.cache import SoftwareCache

    rng = np.random.default_rng(seed)
    lmem = LMem(capacity_bytes=1 << 22)
    m = rng.integers(0, 1 << 40, (rows, cols)).astype(np.uint64)
    lmem.write(0, m.ravel())
    cfg = PolyMemConfig(
        8 * 16 * 8, p=2, q=4, scheme=Scheme.ReRo, rows=8, cols=16
    )
    cache = SoftwareCache(cfg, lmem, (rows, cols), clock_mhz=120)
    for tile in cache.tiles():
        cache.stage_in(tile)
        cache.stage_out()
    back, _ = lmem.read(0, m.size)
    assert (back.reshape(m.shape) == m).all()
