"""Tests for the matrix-vector instruction (the CG building block)."""

import numpy as np
import pytest

from repro.core.exceptions import PatternError
from repro.prf import PrfMachine, RegisterFile


@pytest.fixture
def machine():
    return PrfMachine(RegisterFile(capacity_kb=16))


class TestVmv:
    def test_matches_numpy(self, machine):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (8, 16))
        v = rng.uniform(-1, 1, 16)
        machine.rf.define("A", 8, 16)
        machine.rf.define("v", 1, 16)
        machine.rf.define("y", 1, 8)
        machine.rf["A"].store(a)
        machine.rf["v"].store(v.reshape(1, 16))
        machine.vmv("y", "A", "v")
        assert np.allclose(machine.rf["y"].load().ravel(), a @ v)

    def test_vector_shape_flexible(self, machine):
        """The vector operand may be any register holding n elements."""
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (4, 16))
        v = rng.uniform(-1, 1, 16)
        machine.rf.define("A", 4, 16)
        machine.rf.define("v", 2, 8)  # 16 elements, different shape
        machine.rf.define("y", 1, 4)
        machine.rf["A"].store(a)
        machine.rf["v"].store(v.reshape(2, 8))
        machine.vmv("y", "A", "v")
        assert np.allclose(machine.rf["y"].load().ravel(), a @ v)

    def test_dimension_checks(self, machine):
        machine.rf.define("A", 4, 16)
        machine.rf.define("v", 1, 8)   # wrong length
        machine.rf.define("y", 1, 4)
        with pytest.raises(PatternError, match="needs a 16-element"):
            machine.vmv("y", "A", "v")
        machine.rf.define("w", 1, 16)
        machine.rf.define("z", 1, 8)   # wrong destination
        with pytest.raises(PatternError, match="destination"):
            machine.vmv("z", "A", "w")

    def test_cycle_model(self, machine):
        rng = np.random.default_rng(2)
        machine.rf.define("A", 8, 16)
        machine.rf.define("v", 1, 16)
        machine.rf.define("y", 1, 8)
        machine.rf["A"].store(rng.uniform(size=(8, 16)))
        machine.rf["v"].store(rng.uniform(size=(1, 16)))
        machine.vmv("y", "A", "v")
        # 2 vectors to stream v + 8 rows x (2 stream + 3 reduce)
        assert machine.stats.cycles == 2 + 8 * (2 + 3)
