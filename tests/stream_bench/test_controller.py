"""Tests for the Fig. 9 STREAM design and controller."""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.exceptions import SimulationError
from repro.core.schemes import Scheme
from repro.stream_bench.controller import (
    Job,
    Mode,
    build_stream_design,
)


def small_design(read_ports=2, rows=12, cols=32):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=2,
        q=4,
        scheme=Scheme.RoCo,
        read_ports=read_ports,
        rows=rows,
        cols=cols,
    )
    return build_stream_design(cfg, clock_mhz=120)


class TestDesignStructure:
    def test_default_matches_paper(self):
        d = build_stream_design()
        assert d.config.scheme is Scheme.RoCo
        assert (d.config.p, d.config.q) == (2, 4)
        assert d.config.read_ports == 2
        assert d.dfe.clock_mhz == 120
        # three bands of 170 rows x 512 cols = the paper's array limit
        assert d.controller.band_rows == 170
        assert d.controller.band_capacity_vectors() * 8 * 8 == 170 * 512 * 8

    def test_fig9_kernel_inventory(self):
        d = build_stream_design()
        assert set(d.manager.kernels) == {"controller", "polymem", "mux", "demux"}

    def test_host_endpoints(self):
        d = build_stream_design()
        for name in ("job", "a_in", "b_in", "c_in"):
            assert d.manager.host_input(name) is not None
        for name in ("a_out", "b_out", "c_out"):
            assert d.manager.host_output(name) is not None

    def test_rejects_memory_too_small_for_three_arrays(self):
        cfg = PolyMemConfig(2 * 32 * 8, p=2, q=4, rows=2, cols=32, scheme=Scheme.RoCo)
        with pytest.raises(SimulationError, match="three arrays"):
            build_stream_design(cfg)

    def test_rejects_misaligned_columns(self):
        cfg = PolyMemConfig(12 * 28 * 8, p=2, q=4, rows=12, cols=28, scheme=Scheme.RoCo)
        with pytest.raises(SimulationError, match="multiple of the lane count"):
            build_stream_design(cfg)


class TestLoadOffloadRoundtrip:
    def test_load_then_offload(self):
        d = small_design()
        from repro.stream_bench.harness import StreamHarness

        h = StreamHarness(d)
        arrays = h.load_arrays(vectors=8)
        for idx, key in enumerate("abc"):
            got = h.offload_array(idx, 8)
            assert np.allclose(got, arrays[key]), key

    def test_band_overflow_rejected(self):
        d = small_design()
        ctrl = d.controller
        with pytest.raises(SimulationError, match="exceeds"):
            ctrl._vec_anchor(0, ctrl.band_capacity_vectors())

    def test_vec_anchor_layout(self):
        d = small_design()
        ctrl = d.controller
        # 32 cols / 8 lanes = 4 vectors per row; band 1 starts at row 4
        assert ctrl._vec_anchor(0, 0) == (0, 0)
        assert ctrl._vec_anchor(0, 3) == (0, 24)
        assert ctrl._vec_anchor(0, 4) == (1, 0)
        assert ctrl._vec_anchor(1, 0) == (4, 0)
        assert ctrl._vec_anchor(2, 5) == (9, 8)


class TestComputeStages:
    def test_copy_moves_a_to_c(self):
        from repro.stream_bench.harness import StreamHarness
        from repro.stream_bench.apps import COPY

        h = StreamHarness(small_design())
        m = h.run(COPY, vectors=10)  # verify=True checks C == A
        assert m.cycles_per_run > 10

    def test_sum_needs_two_ports(self):
        from repro.stream_bench.harness import StreamHarness
        from repro.stream_bench.apps import SUM

        h = StreamHarness(small_design(read_ports=1))
        with pytest.raises(SimulationError, match="read ports"):
            h.run(SUM, vectors=4)

    def test_mode_enum_covers_fig9(self):
        assert {m.value for m in Mode} == {
            "load",
            "copy",
            "scale",
            "sum",
            "triad",
            "offload",
        }

    def test_job_defaults(self):
        j = Job(Mode.COPY, 10)
        assert j.array == 0 and j.scalar == 3.0
