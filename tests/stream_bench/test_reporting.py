"""Tests for the STREAM-standard report format."""

import pytest

from repro.stream_bench import COPY, StreamHarness, all_apps, stream_report


@pytest.fixture(scope="module")
def harness():
    return StreamHarness()


class TestStreamReport:
    def test_canonical_layout(self, harness):
        ms = [
            harness.measure_analytic(a, harness.max_vectors, runs=1000)
            for a in all_apps()
        ]
        text = stream_report(ms)
        # STREAM's signature lines
        assert "Function" in text and "Best Rate MB/s" in text
        assert "Copy:" in text and "Triad:" in text
        assert "executed 1000 times" in text
        assert "Array size = 87040" in text

    def test_rates_match_measurements(self, harness):
        m = harness.measure_analytic(COPY, harness.max_vectors, runs=1000)
        text = stream_report([m])
        assert f"{m.mbps:16.1f}".strip() in text

    def test_efficiency_footer(self, harness):
        m = harness.measure_analytic(COPY, harness.max_vectors)
        text = stream_report([m])
        assert "Sustained fraction of theoretical peak: 99." in text

    def test_empty_report(self):
        text = stream_report([])
        assert "Function" in text

    def test_cli_uses_stream_format(self, capsys):
        from repro.cli import main

        assert main(["stream", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "Best Rate MB/s" in out
