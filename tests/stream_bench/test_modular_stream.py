"""Tests for the STREAM design built over the modular Fig. 3 pipeline."""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.exceptions import SimulationError
from repro.core.schemes import Scheme
from repro.stream_bench import COPY, StreamHarness, all_apps, build_stream_design


def harness(style):
    cfg = PolyMemConfig(
        36 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
        rows=36, cols=32,
    )
    return StreamHarness(build_stream_design(cfg, clock_mhz=120, style=style))


class TestModularStream:
    @pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
    def test_every_app_verifies_on_modular(self, app):
        h = harness("modular")
        m = h.run(app, vectors=24)
        assert m.cycles_per_run > 0  # run() itself verified the data

    def test_analytic_model_matches_modular(self):
        for v in (4, 16, 40):
            h = harness("modular")
            measured = h.run(COPY, vectors=v)
            analytic = h.measure_analytic(COPY, v)
            assert measured.cycles_per_run == analytic.cycles_per_run, v

    def test_fused_and_modular_same_results(self):
        results = {}
        for style in ("fused", "modular"):
            h = harness(style)
            arrays = h.load_arrays(vectors=20, seed=9)
            h.run_app(COPY, 20)
            results[style] = h.offload_array(2, 20)
        assert np.allclose(results["fused"], results["modular"])

    def test_modular_has_lower_latency_per_run(self):
        """The modular pipeline's observable latency is smaller than the
        fused kernel's synthesized 14 cycles — same throughput, fewer
        cycles per bounded run."""
        fused = harness("fused").run(COPY, vectors=24).cycles_per_run
        modular = harness("modular").run(COPY, vectors=24).cycles_per_run
        assert modular < fused

    def test_style_validation(self):
        cfg = PolyMemConfig(
            36 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
            rows=36, cols=32,
        )
        with pytest.raises(SimulationError, match="style"):
            build_stream_design(cfg, style="holographic")

    def test_design_metadata(self):
        h = harness("modular")
        assert h.design.style == "modular"
        assert h.design.polymem is None
        assert h.design.read_latency == 1
        hf = harness("fused")
        assert hf.design.polymem is not None
        assert hf.design.read_latency == 14
