"""Tests for the STREAM harness, the cycle model, and the Fig. 10 claims."""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.schemes import Scheme
from repro.stream_bench import (
    COPY,
    PIPELINE_SLACK_CYCLES,
    SCALE,
    SUM,
    TRIAD,
    StreamHarness,
    all_apps,
    build_stream_design,
    sweep_fig10,
)


def small_harness(rows=36, cols=32, read_ports=2):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=2,
        q=4,
        scheme=Scheme.RoCo,
        read_ports=read_ports,
        rows=rows,
        cols=cols,
    )
    return StreamHarness(build_stream_design(cfg, clock_mhz=120))


class TestApps:
    def test_canonical_order(self):
        assert [a.name for a in all_apps()] == ["Copy", "Scale", "Sum", "Triad"]

    def test_traffic_accounting(self):
        assert COPY.bytes_per_element == 16
        assert SCALE.bytes_per_element == 16
        assert SUM.bytes_per_element == 24
        assert TRIAD.bytes_per_element == 24

    def test_flops(self):
        assert COPY.flops_per_element == 0
        assert TRIAD.flops_per_element == 2

    def test_references(self):
        a, b, c = np.array([1.0]), np.array([2.0]), np.array([4.0])
        assert COPY.expected(a, b, c, 3.0) == [1.0]
        assert SCALE.expected(a, b, c, 3.0) == [6.0]
        assert SUM.expected(a, b, c, 3.0) == [6.0]
        assert TRIAD.expected(a, b, c, 3.0) == [14.0]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
    def test_each_app_verifies(self, app):
        """run() raises if the offloaded destination array is wrong, so a
        clean return IS the correctness assertion."""
        h = small_harness()
        m = h.run(app, vectors=12, scalar=2.5)
        assert m.app_name == app.name
        assert m.elements == 12 * 8

    def test_verification_catches_corruption(self):
        h = small_harness()
        # sabotage: poison one word of band C (the Copy destination)
        h.load_arrays(vectors=12)
        original_run_app = h.run_app

        def sabotaged(app, vectors, scalar=3.0):
            cycles = original_run_app(app, vectors, scalar)
            mem = h.design.polymem.memory
            snap = mem.dump().copy()
            band = h.design.controller.band_rows
            # flip exponent bits — low-mantissa flips are below the
            # verification's relative tolerance
            snap[2 * band, 0] ^= np.uint64(0x7FF0000000000000)
            mem.load(snap)
            return cycles

        h.run_app = sabotaged
        from repro.core.exceptions import SimulationError

        with pytest.raises(SimulationError, match="does not match"):
            h.run(COPY, vectors=12)


class TestCycleModel:
    @pytest.mark.parametrize("vectors", [4, 16, 48])
    @pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
    def test_analytic_matches_simulator(self, app, vectors):
        """cycles = vectors + read_latency + slack, exactly."""
        h = small_harness()
        measured = h.run(app, vectors=vectors)
        analytic = h.measure_analytic(app, vectors)
        assert measured.cycles_per_run == analytic.cycles_per_run

    def test_slack_constant_is_two(self):
        h = small_harness()
        m = h.run(COPY, vectors=20)
        assert m.cycles_per_run == 20 + h.design.polymem.read_latency + 2
        assert PIPELINE_SLACK_CYCLES == 2


class TestMeasurementArithmetic:
    def test_peak_matches_paper_formula(self):
        """2 ports x 8 lanes x 8 B x 120 MHz = 15,360 MB/s."""
        h = small_harness()
        m = h.measure_analytic(COPY, 10)
        assert m.peak_mbps == pytest.approx(15_360)

    def test_seconds_per_run(self):
        h = small_harness()
        m = h.measure_analytic(COPY, 100)
        expect = 300e-9 + m.cycles_per_run / 120e6
        assert m.seconds_per_run == pytest.approx(expect)
        assert m.total_seconds == pytest.approx(1000 * expect)

    def test_overhead_hurts_small_sizes(self):
        h = small_harness()
        small = h.measure_analytic(COPY, 4)
        large = h.measure_analytic(COPY, 48)
        assert small.efficiency < large.efficiency


class TestFig10:
    @pytest.fixture(scope="class")
    def harness(self):
        return StreamHarness()  # the paper's full-size design

    def test_full_size_exceeds_99_pct(self, harness):
        """The paper's headline: >99% of 15,360 MB/s at ~700 KB."""
        m = harness.measure_analytic(COPY, harness.max_vectors, runs=1000)
        assert m.peak_mbps == pytest.approx(15_360)
        assert m.efficiency > 0.99
        # within 1% of the paper's measured 15,301 MB/s
        assert m.mbps == pytest.approx(15_301, rel=0.01)

    def test_sweep_shape(self, harness):
        pts = sweep_fig10(harness=harness)
        assert len(pts) == 20
        # monotone ramp towards the sustained plateau
        effs = [p.efficiency for p in pts]
        assert effs == sorted(effs)
        assert pts[-1].copied_kb == pytest.approx(680, abs=1)
        assert pts[-1].efficiency > 0.99

    def test_sweep_custom_sizes(self, harness):
        pts = sweep_fig10(sizes_kb=[1, 10, 100], harness=harness)
        assert len(pts) == 3
        assert pts[0].efficiency < 0.9  # overhead-dominated

    def test_max_array_is_paper_limit(self, harness):
        """170 x 512 x 8 B ~ 700 KB per array."""
        assert harness.max_vectors * harness.lanes * 8 == 170 * 512 * 8
