"""Property test: scalar vs batched equivalence on the Fig. 9 design.

Randomized PolyMem geometries, read latencies, STREAM apps and all three
collision policies run the full Load / compute / Offload sequence under
both engines; the offloaded bytes, compute-stage cycles and every
kernel's activity counters must be identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PolyMemConfig
from repro.core.schemes import Scheme
from repro.stream_bench import StreamHarness, all_apps, build_stream_design


def _design(rows, cols, latency, policy, engine):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=2,
        q=4,
        scheme=Scheme.RoCo,
        read_ports=2,
        rows=rows,
        cols=cols,
    )
    design = build_stream_design(
        cfg, read_latency=latency, collision_policy=policy
    )
    design.dfe.simulator.engine = engine
    return design


def _full_pass(rows, cols, latency, policy, app, vectors, engine):
    design = _design(rows, cols, latency, policy, engine)
    harness = StreamHarness(design)
    vectors = max(1, min(vectors, harness.max_vectors))
    harness.load_arrays(vectors)
    cycles = harness.run_app(app, vectors, scalar=1.5)
    data = harness.offload_array(app.destination, vectors)
    counters = {
        k.name: (k.active_cycles, k.total_cycles)
        for k in design.manager.kernels.values()
    }
    return data, cycles, design.dfe.simulator.cycles, counters


@settings(max_examples=25, deadline=None)
@given(
    rows=st.sampled_from([6, 12, 24]),
    cols=st.sampled_from([8, 16, 32]),
    latency=st.integers(1, 20),
    policy=st.sampled_from(["read_first", "write_first", "forbid"]),
    app_idx=st.integers(0, 3),
    vectors=st.integers(1, 96),
)
def test_stream_engines_bit_identical(
    rows, cols, latency, policy, app_idx, vectors
):
    app = all_apps()[app_idx]
    s = _full_pass(rows, cols, latency, policy, app, vectors, "scalar")
    b = _full_pass(rows, cols, latency, policy, app, vectors, "batched")
    assert np.array_equal(
        s[0].view(np.uint64), b[0].view(np.uint64)
    ), "offloaded bytes differ"
    assert b[1] == s[1], "compute-stage cycles differ"
    assert b[2] == s[2], "total simulated cycles differ"
    assert b[3] == s[3], "kernel activity counters differ"


@pytest.mark.parametrize("policy", ["read_first", "write_first", "forbid"])
def test_fig9_batches_under_every_policy(policy):
    """The full-size design must take the fast path (the chunk validator
    proves STREAM's read/write slots disjoint under every policy)."""
    design = _design(36, 64, 14, policy, "batched")
    harness = StreamHarness(design)
    harness.load_arrays(96)
    cycles = harness.run_app(all_apps()[0], 96)
    assert cycles == 96 + 14 + 2
    polymem = design.polymem
    assert polymem.batched_cycles > 0.5 * polymem.total_cycles
