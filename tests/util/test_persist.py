"""Tests for JSON persistence of DSE sweeps and schedules."""

import json

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.schemes import Scheme
from repro.dse import DesignSpace, explore
from repro.schedule import execute_schedule, random_trace, row_trace, schedule_trace
from repro.util import (
    load_dse_result,
    load_schedule,
    save_dse_result,
    save_schedule,
)


@pytest.fixture(scope="module")
def small_result():
    space = DesignSpace(
        capacities_kb=(512,),
        lane_counts=(8,),
        read_ports=(1, 2),
        schemes=(Scheme.ReRo, Scheme.ReTr),
    )
    return explore(space)


class TestDsePersistence:
    def test_roundtrip(self, small_result, tmp_path):
        path = save_dse_result(small_result, tmp_path / "dse.json")
        loaded = load_dse_result(path)
        assert len(loaded.points) == len(small_result.points)
        for a, b in zip(loaded.points, small_result.points):
            assert a.config == b.config
            assert a.model_mhz == b.model_mhz
            assert a.paper_mhz == b.paper_mhz
            assert a.bram_pct == b.bram_pct

    def test_loaded_result_is_queryable(self, small_result, tmp_path):
        path = save_dse_result(small_result, tmp_path / "dse.json")
        loaded = load_dse_result(path)
        point = loaded.lookup(Scheme.ReRo, 512, 8, 2)
        assert point is not None
        assert loaded.peak_read_gbps == small_result.peak_read_gbps
        assert loaded.space.columns() == small_result.space.columns()

    def test_format_tag_checked(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(ConfigurationError, match="format"):
            load_dse_result(bad)

    def test_json_is_stable_and_readable(self, small_result, tmp_path):
        path = save_dse_result(small_result, tmp_path / "dse.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.dse/1"
        assert payload["points"][0]["config"]["scheme"] in ("ReRo", "ReTr")


class TestSchedulePersistence:
    def test_roundtrip(self, tmp_path):
        trace = random_trace(10, 10, density=0.3, seed=2)
        schedule = schedule_trace(trace, Scheme.ReRo, 2, 4)
        path = save_schedule(schedule, tmp_path / "sched.json")
        loaded = load_schedule(path)
        assert loaded.accesses == schedule.accesses
        assert loaded.scheme is schedule.scheme
        assert loaded.speedup == schedule.speedup
        assert loaded.proven_optimal == schedule.proven_optimal

    def test_loaded_schedule_executes(self, tmp_path):
        trace = row_trace(4, 16)
        schedule = schedule_trace(trace, Scheme.ReRo, 2, 4)
        loaded = load_schedule(save_schedule(schedule, tmp_path / "s.json"))
        result = execute_schedule(trace, loaded)
        assert result.covered and result.matches_prediction

    def test_format_tag_checked(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "repro.dse/1"}))
        with pytest.raises(ConfigurationError, match="format"):
            load_schedule(bad)
