"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("info", "validate", "dse", "stream", "schedule", "productivity"):
            args = parser.parse_args(
                [cmd, "rows"] if cmd == "schedule" else [cmd]
            )
            assert args.command == cmd


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ReRo" in out and "rectangle" in out

    def test_validate_passes(self, capsys):
        rc = main(
            ["validate", "--capacity-kb", "4", "--scheme", "ReCo", "--max-rows", "8"]
        )
        assert rc == 0
        assert "PASSED" in capsys.readouterr().out

    def test_validate_modular(self, capsys):
        rc = main(
            ["validate", "--capacity-kb", "4", "--style", "modular",
             "--max-rows", "8"]
        )
        assert rc == 0

    def test_validate_from_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "polymem.cfg"
        cfg.write_text("capacity_bytes = 4096\np = 2\nq = 4\nscheme = ReTr\n")
        rc = main(["validate", "--config", str(cfg), "--max-rows", "8"])
        assert rc == 0
        assert "ReTr" in capsys.readouterr().out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "MAXIMUM CLOCK FREQUENCIES" in out
        assert "peak read" in out

    def test_stream(self, capsys):
        assert main(["stream"]) == 0
        out = capsys.readouterr().out
        assert "Copy" in out and "Triad" in out

    def test_stream_fig10(self, capsys):
        assert main(["stream", "--fig10", "--runs", "10"]) == 0
        assert "copied KB" in capsys.readouterr().out

    def test_schedule(self, capsys):
        assert main(["schedule", "columns", "--rows", "1", "--cols", "32"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out

    def test_schedule_greedy(self, capsys):
        assert main(["schedule", "random", "--rows", "8", "--cols", "8",
                     "--solver", "greedy"]) == 0

    def test_productivity(self, capsys):
        assert main(["productivity"]) == 0
        assert "Shuffle" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "--capacity-kb", "512", "--scheme", "ReO"]) == 0
        out = capsys.readouterr().out
        assert "SYNTHESIS ESTIMATE" in out and "FEASIBLE" in out

    def test_report_infeasible(self, capsys):
        assert main(
            ["report", "--capacity-kb", "4096", "--ports", "2"]
        ) == 0
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "repro" in proc.stdout
