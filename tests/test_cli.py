"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.exec import REPORT_FORMAT, Report


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("info", "validate", "dse", "stream", "schedule", "productivity"):
            args = parser.parse_args(
                [cmd, "rows"] if cmd == "schedule" else [cmd]
            )
            assert args.command == cmd


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ReRo" in out and "rectangle" in out

    def test_validate_passes(self, capsys):
        rc = main(
            ["validate", "--capacity-kb", "4", "--scheme", "ReCo", "--max-rows", "8"]
        )
        assert rc == 0
        assert "PASSED" in capsys.readouterr().out

    def test_validate_modular(self, capsys):
        rc = main(
            ["validate", "--capacity-kb", "4", "--style", "modular",
             "--max-rows", "8"]
        )
        assert rc == 0

    def test_validate_from_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "polymem.cfg"
        cfg.write_text("capacity_bytes = 4096\np = 2\nq = 4\nscheme = ReTr\n")
        rc = main(["validate", "--config", str(cfg), "--max-rows", "8"])
        assert rc == 0
        assert "ReTr" in capsys.readouterr().out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "MAXIMUM CLOCK FREQUENCIES" in out
        assert "peak read" in out

    def test_stream(self, capsys):
        assert main(["stream"]) == 0
        out = capsys.readouterr().out
        assert "Copy" in out and "Triad" in out

    def test_stream_fig10(self, capsys):
        assert main(["stream", "--fig10", "--runs", "10"]) == 0
        assert "copied KB" in capsys.readouterr().out

    def test_schedule(self, capsys):
        assert main(["schedule", "columns", "--rows", "1", "--cols", "32"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out

    def test_schedule_greedy(self, capsys):
        assert main(["schedule", "random", "--rows", "8", "--cols", "8",
                     "--solver", "greedy"]) == 0

    def test_productivity(self, capsys):
        assert main(["productivity"]) == 0
        assert "Shuffle" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "--capacity-kb", "512", "--scheme", "ReO"]) == 0
        out = capsys.readouterr().out
        assert "SYNTHESIS ESTIMATE" in out and "FEASIBLE" in out

    def test_report_infeasible(self, capsys):
        assert main(
            ["report", "--capacity-kb", "4096", "--ports", "2"]
        ) == 0
        assert "INFEASIBLE" in capsys.readouterr().out

class TestExecFlags:
    """The shared repro.exec flags on dse/stream/experiments."""

    def test_registered_on_grid_subcommands(self):
        parser = build_parser()
        for cmd in ("dse", "stream", "experiments"):
            args = parser.parse_args(
                [cmd, "--workers", "2", "--no-cache", "--cache-dir", "/tmp/c"]
            )
            assert args.workers == 2
            assert args.no_cache is True
            assert args.cache_dir == "/tmp/c"
            assert args.json_out is None
            args = parser.parse_args([cmd, "--json"])
            assert args.json_out == "-"

    def test_dse_workers_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["dse", "--workers", "2", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "90 points (0 cached, 90 computed)" in out
        # warm re-run: every point comes from the cache
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "90 points (90 cached, 0 computed)" in out
        assert "MAXIMUM CLOCK FREQUENCIES" in out

    def test_dse_no_cache(self, tmp_path, capsys):
        argv = ["dse", "--no-cache", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "(0 cached, 90 computed)" in capsys.readouterr().out
        assert not (tmp_path / "c").exists()

    def test_dse_json_stdout(self, capsys):
        assert main(["dse", "--no-cache", "--json"]) == 0
        out = capsys.readouterr().out
        report = Report.from_json(out[out.index('{\n  "format"'):])
        assert report.entries
        assert all(e.experiment == "Table IV" for e in report.entries)
        assert report.n_checked == len(report.entries)

    def test_dse_json_file(self, tmp_path, capsys):
        path = tmp_path / "dse.json"
        assert main(["dse", "--no-cache", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == REPORT_FORMAT
        assert payload["meta"]["sweep_points"] == 90
        assert len(payload["entries"]) == 90

    def test_stream_json(self, tmp_path, capsys):
        path = tmp_path / "stream.json"
        rc = main(
            ["stream", "--fig10", "--runs", "10", "--no-cache",
             "--json", str(path)]
        )
        assert rc == 0
        report = Report.from_json(path.read_text())
        quantities = [e.quantity for e in report.entries]
        assert any(q.startswith("Copy bandwidth @") for q in quantities)
        assert any("Triad" in q for q in quantities)

    def test_experiments_warm_cache_skips_sweep(self, tmp_path, capsys):
        path = tmp_path / "scorecard.json"
        argv = ["experiments", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"), "--json", str(path)]
        assert main(argv) == 0
        cold = Report.from_json(path.read_text())
        assert cold.meta["sweep_cached"] == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "SCORECARD" in out and "checks passed" in out
        warm = Report.from_json(path.read_text())
        assert warm.meta["sweep_points"] == cold.meta["sweep_points"]
        # a warm re-run skips >= 90% of the sweep points
        assert warm.meta["sweep_cached"] >= 0.9 * warm.meta["sweep_points"]
        assert [e.ok for e in warm.entries] == [e.ok for e in cold.entries]

    def test_stream_run_batched_default_with_profile(self, capsys):
        rc = main(["stream", "run", "--vectors", "96", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batched engine" in out
        assert "compute cycles: 112" in out  # 96 + 14 latency + 2 slack
        # the per-kernel activity table
        for name in ("controller", "mux", "demux", "polymem"):
            assert name in out
        assert "util" in out and "batched" in out

    def test_stream_run_scalar_same_cycles(self, capsys):
        rc = main(
            ["stream", "run", "--vectors", "96", "--engine", "scalar",
             "--app", "triad"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar engine" in out
        assert "compute cycles: 112" in out

    def test_stream_run_engine_arg_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["stream", "run"])
        assert args.engine == "batched" and args.profile is False
        args = parser.parse_args(
            ["stream", "run", "--engine", "scalar", "--profile"]
        )
        assert args.engine == "scalar" and args.profile is True
        with pytest.raises(SystemExit):
            parser.parse_args(["stream", "run", "--engine", "turbo"])

    def test_stream_run_json_report(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        rc = main(
            ["stream", "run", "--vectors", "64", "--profile",
             "--json", str(path)]
        )
        assert rc == 0
        report = Report.from_json(path.read_text())
        compute = [e for e in report.entries if e.experiment == "§V STREAM"]
        assert compute and compute[0].metrics["engine"] == "batched"
        profiles = [
            e for e in report.entries if e.experiment == "kernel profile"
        ]
        assert {e.quantity for e in profiles} == {
            "controller", "mux", "demux", "polymem"
        }
        assert all("elements_in" in e.metrics for e in profiles)

    def test_config_from_args_shim_warns(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(["report", "--capacity-kb", "4"])
        with pytest.warns(DeprecationWarning, match="from_any"):
            cfg = _config_from_args(args)
        assert cfg.capacity_bytes == 4096

    def test_validate_json_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "polymem.json"
        cfg.write_text(json.dumps(
            {"capacity_kb": 4, "p": 2, "q": 4, "scheme": "ReCo"}
        ))
        rc = main(["validate", "--config", str(cfg), "--max-rows", "8"])
        assert rc == 0
        assert "ReCo" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "repro" in proc.stdout


class TestTelemetryFlags:
    def test_stream_run_metrics_and_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        report_path = tmp_path / "run.json"
        rc = main(
            ["stream", "run", "--engine", "batched", "--vectors", "96",
             "--metrics", "--trace-out", str(trace),
             "--json", str(report_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # the metrics summary, with the acceptance-relevant derived lines
        assert "telemetry summary" in out
        assert "scalar-fallback cycles" in out
        assert "stall cycles" in out
        assert "plan-cache hit rate" in out
        assert "achieved vs peak bandwidth" in out
        # a Perfetto-loadable trace with nested host->pcie->kernel->segment
        doc = json.loads(trace.read_text())
        assert doc["displayTimeUnit"] == "ns"
        names = {e["name"] for e in doc["traceEvents"]}
        for expected in ("host.write_stream", "host.run_kernel",
                        "pcie.transfer", "kernel.run", "segment.batched"):
            assert expected in names, expected
        assert not any(
            e.get("args", {}).get("aborted") for e in doc["traceEvents"]
        )
        # the snapshot also lands in the JSON report's meta
        report = Report.from_json(report_path.read_text())
        snap = report.meta["telemetry"]
        assert snap["format"] == "repro.telemetry/1"
        counters = snap["metrics"]["counters"]
        assert counters["sim.stall_cycles"] >= 0
        assert counters["sim.cycles.scalar"] >= 0
        assert "polymem.plan_cache.hits" in counters
        assert snap["metrics"]["gauges"]["stream.peak_mbps"]["value"] > 0

    def test_telemetry_off_leaves_no_session(self, capsys):
        from repro.telemetry import active

        assert main(["stream", "run", "--vectors", "64"]) == 0
        assert active() is None
        assert "telemetry summary" not in capsys.readouterr().out

    def test_telemetry_summary_command(self, tmp_path, capsys):
        report_path = tmp_path / "run.json"
        assert main(
            ["stream", "run", "--vectors", "64", "--metrics",
             "--json", str(report_path)]
        ) == 0
        capsys.readouterr()
        assert main(["telemetry", "summary", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "derived" in out

    def test_telemetry_summary_rejects_plain_json(self, tmp_path):
        from repro.core.exceptions import ConfigurationError

        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError):
            main(["telemetry", "summary", str(path)])

    def test_dse_accepts_telemetry_flags(self, capsys):
        assert main(["dse", "--metrics"]) == 0
        assert "telemetry summary" in capsys.readouterr().out


class TestProgramDumpStats:
    def test_text_stats(self, capsys):
        assert main(["program", "dump", "matmul", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "stats (dry, from trace shapes)" in out
        assert "elements" in out

    def test_json_stats_totals(self, capsys):
        assert main(["program", "dump", "matmul", "--stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        stats = doc["stats"]
        assert stats["total_cycles"] == sum(
            s["cycles"] for s in stats["segments"]
        )
        assert stats["total_cycles"] == doc["access_cycles"]
        assert stats["total_elements"] > 0
        for seg in stats["segments"]:
            assert seg["elements"] % seg["cycles"] == 0  # lanes x ports

    def test_describe_only_program_has_no_element_counts(self, capsys):
        assert main(
            ["program", "dump", "stream_copy", "--stats", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["total_elements"] is None
        assert all(
            s["elements"] is None for s in doc["stats"]["segments"]
        )

    def test_stats_off_by_default(self, capsys):
        assert main(["program", "dump", "matmul", "--json"]) == 0
        assert "stats" not in json.loads(capsys.readouterr().out)


class TestTelemetryObservatory:
    """The ledger/diff/regress/scorecard subcommands over a run ledger."""

    @pytest.fixture
    def ledger_path(self, tmp_path):
        from repro.telemetry.context import SNAPSHOT_FORMAT
        from repro.telemetry.ledger import Ledger, LedgerEntry
        from repro.telemetry.regress import evaluate_gate

        def snap(cycles):
            return {
                "format": SNAPSHOT_FORMAT,
                "metrics": {
                    "counters": {"sim.cycles.batched": cycles},
                    "gauges": {},
                    "histograms": {},
                },
            }

        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        for i, speedup in enumerate((3.0, 3.1, 1.4)):
            ledger.append(
                LedgerEntry(
                    bench="bench_sim",
                    ts=float(i),
                    params={"workload": "stream.copy", "scheme": "batched"},
                    provenance={
                        "backend": "vectis",
                        "git": {"sha": "a" * 40, "dirty": False},
                    },
                    gates=[evaluate_gate("sim.batched_vs_scalar", speedup)],
                    timings={"wall_s": 1.0 + i},
                    telemetry=snap(100 * (i + 1)),
                )
            )
        return path

    def test_ledger_listing(self, ledger_path, capsys):
        assert main(["telemetry", "ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "bench_sim" in out and "aaaaaaaaaaaa" in out
        assert "FAIL" in out  # the 1.4x run misses its gate
        assert "3 entries" in out

    def test_ledger_last_and_json(self, ledger_path, capsys):
        assert main(
            ["telemetry", "ledger", str(ledger_path), "--last", "1", "--json"]
        ) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1 and docs[0]["ts"] == 2.0

    def test_diff_two_ledger_entries(self, ledger_path, capsys):
        assert main(
            ["telemetry", "diff", f"{ledger_path}#0", f"{ledger_path}#-1"]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry diff" in out
        assert "sim.batched_vs_scalar" in out  # the gate moved 3.0 -> 1.4
        assert "wall_s" in out

    def test_diff_json(self, ledger_path, capsys):
        assert main(
            ["telemetry", "diff", f"{ledger_path}#0", f"{ledger_path}#-1",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        kinds = {row["kind"] for row in doc["rows"]}
        assert {"gate", "timing", "counter"} <= kinds

    def test_regress_fails_on_failed_gate(self, ledger_path, capsys):
        assert main(
            ["telemetry", "regress", str(ledger_path), "--baseline-window", "5"]
        ) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "bench_sim:sim.batched_vs_scalar" in out

    def test_regress_json(self, ledger_path, capsys):
        assert main(["telemetry", "regress", str(ledger_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdicts"][0]["status"] == "fail"
        assert doc["verdicts"][0]["baseline"] == 3.05

    def test_regress_strict_turns_warns_into_failure(self, tmp_path, capsys):
        from repro.telemetry.ledger import Ledger, LedgerEntry
        from repro.telemetry.regress import evaluate_gate

        path = tmp_path / "warn.jsonl"
        ledger = Ledger(path)
        for speedup in (3.0, 3.0, 3.0, 2.2):  # passes, but 27% worse
            ledger.append(
                LedgerEntry(
                    bench="b",
                    gates=[evaluate_gate("sim.batched_vs_scalar", speedup)],
                )
            )
        capsys.readouterr()
        assert main(["telemetry", "regress", str(path)]) == 0
        assert "[WARN]" in capsys.readouterr().out
        assert main(["telemetry", "regress", str(path), "--strict"]) == 1

    def test_scorecard_markdown_and_out(self, ledger_path, tmp_path, capsys):
        assert main(["telemetry", "scorecard", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "# Scorecard" in out and "stream.copy" in out
        dest = tmp_path / "scorecard.md"
        assert main(
            ["telemetry", "scorecard", str(ledger_path), "--out", str(dest)]
        ) == 0
        assert "# Scorecard" in dest.read_text()

    def test_scorecard_json(self, ledger_path, capsys):
        assert main(
            ["telemetry", "scorecard", str(ledger_path), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        (cell,) = doc["cells"]
        assert cell["workload"] == "stream.copy"
        assert cell["ok"] is False  # newest run failed its gate

    def test_profile_spans_flag_prints_attribution(self, capsys):
        assert main(
            ["stream", "run", "--vectors", "64", "--profile-spans", "*"]
        ) == 0
        err = capsys.readouterr().err
        assert "profile of span" in err
        assert "cum" in err
