"""Property test: the batched engine is bit-identical to the scalar one.

Randomized source -> (map|delay)* -> sink pipelines with random FIFO
depths, latencies and sizes run under both engines; the sink data, total
cycles and per-kernel activity counters must match exactly.  The batched
engine must also actually batch (take the fast path) on the uniform
designs, or this test would pass vacuously.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxeler import (
    DelayKernel,
    Manager,
    MapKernel,
    SinkKernel,
    SourceKernel,
    Simulator,
)

_STAGES = st.lists(
    st.one_of(
        st.tuples(
            st.just("map"),
            st.integers(1, 7),
            st.sampled_from([2, 4, 8, 64, None]),
        ),
        st.tuples(
            st.just("delay"),
            st.integers(1, 17),
            st.sampled_from([2, 4, 8, 64, None]),
        ),
    ),
    max_size=4,
)


def _build(n_values, stages, tail_cap):
    mgr = Manager("prop")
    src = mgr.add_kernel(SourceKernel("src", range(n_values)))
    prev = src
    for i, (kind, param, cap) in enumerate(stages):
        if kind == "map":
            k = MapKernel(f"map{i}", lambda v, m=param: v * m + 1)
        else:
            k = DelayKernel(f"delay{i}", param)
        mgr.add_kernel(k)
        mgr.connect(prev, "out", k, "in", capacity=cap)
        prev = k
    sink = mgr.add_kernel(SinkKernel("sink"))
    mgr.connect(prev, "out", sink, "in", capacity=tail_cap)
    return mgr, sink


def _run(engine, n_values, stages, tail_cap):
    mgr, sink = _build(n_values, stages, tail_cap)
    sim = Simulator(mgr, engine=engine)
    result = sim.run()
    counters = {
        k.name: (k.active_cycles, k.total_cycles)
        for k in mgr.kernels.values()
    }
    batched = sum(k.batched_cycles for k in mgr.kernels.values())
    return sink.collected, result.cycles, counters, batched


@settings(max_examples=60, deadline=None)
@given(
    n_values=st.integers(0, 150),
    stages=_STAGES,
    tail_cap=st.sampled_from([2, 8, 64, None]),
)
def test_batched_engine_bit_identical(n_values, stages, tail_cap):
    s_data, s_cycles, s_counters, _ = _run("scalar", n_values, stages, tail_cap)
    b_data, b_cycles, b_counters, batched = _run(
        "batched", n_values, stages, tail_cap
    )
    assert b_data == s_data
    assert b_cycles == s_cycles
    assert b_counters == s_counters


def test_batched_path_actually_taken():
    """Guard against a vacuous pass: an unconstrained long pipeline must
    execute mostly through chunks, not scalar fallback."""
    _, cycles, _, batched = _run(
        "batched", 500, [("delay", 9, None), ("map", 3, None)], None
    )
    assert batched > 0.8 * cycles
