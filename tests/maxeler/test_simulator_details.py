"""Simulator detail tests: resumability, budgets, counters, ordering."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import (
    DFE,
    DelayKernel,
    Manager,
    MapKernel,
    SinkKernel,
    SourceKernel,
)


def linear(values, latency=None):
    mgr = Manager("d")
    src = mgr.add_kernel(SourceKernel("src", values))
    last = src
    if latency:
        dly = mgr.add_kernel(DelayKernel("dly", latency))
        mgr.connect(src, "out", dly, "in")
        last = dly
    snk = mgr.add_kernel(SinkKernel("snk"))
    mgr.connect(last, "out", snk, "in")
    return mgr, snk


class TestResume:
    def test_run_twice_continues(self):
        """A simulator can be re-run after a predicate stop; cycles are
        cumulative and no data is lost."""
        mgr, snk = linear(range(20))
        dfe = DFE(mgr, 100)
        dfe.run(until=lambda: len(snk.collected) >= 5)
        first = dfe.simulator.cycles
        dfe.run()  # to quiescence
        assert snk.collected == list(range(20))
        assert dfe.simulator.cycles > first

    def test_quiescent_design_run_again_is_cheap(self):
        mgr, snk = linear(range(3))
        dfe = DFE(mgr, 100)
        dfe.run()
        before = dfe.simulator.cycles
        dfe.run()
        assert dfe.simulator.cycles - before <= 2


class TestBudgets:
    def test_budget_is_per_run_not_global(self):
        mgr, snk = linear(range(200))
        dfe = DFE(mgr, 100)
        dfe.run(until=lambda: len(snk.collected) >= 50, max_cycles=100)
        # second run gets its own budget
        dfe.run(until=lambda: len(snk.collected) >= 100, max_cycles=100)
        assert len(snk.collected) >= 100

    def test_default_budget_from_constructor(self):
        mgr, _ = linear(range(5))
        dfe = DFE(mgr, 100, max_cycles=3)
        with pytest.raises(SimulationError, match="exceeded"):
            dfe.run(until=lambda: False)


class TestCounters:
    def test_stream_counters(self):
        mgr, snk = linear(range(7))
        dfe = DFE(mgr, 100)
        dfe.run()
        (stream,) = [
            s for n, s in mgr.streams.items() if n.startswith("src")
        ]
        assert stream.total_pushed == 7
        assert stream.total_popped == 7
        assert stream.empty

    def test_kernel_activity_fractions(self):
        mgr, snk = linear(range(4), latency=3)
        dfe = DFE(mgr, 100)
        result = dfe.run()
        act = result.kernel_activity
        assert set(act) == {"src", "dly", "snk"}
        assert all(0.0 <= v <= 1.0 for v in act.values())
        # the delay kernel works longer than the source
        assert act["dly"] >= act["src"]


class TestEvaluationOrder:
    def test_downstream_registration_chains_same_cycle(self):
        """Kernels registered upstream-to-downstream pass an element
        through the whole chain in one tick (combinational chaining,
        docs/simulation.md)."""
        mgr = Manager("chain")
        src = mgr.add_kernel(SourceKernel("src", [1]))
        m1 = mgr.add_kernel(MapKernel("m1", lambda x: x + 1))
        m2 = mgr.add_kernel(MapKernel("m2", lambda x: x * 2))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(src, "out", m1, "in")
        mgr.connect(m1, "out", m2, "in")
        mgr.connect(m2, "out", snk, "in")
        result = DFE(mgr, 100).run()
        assert snk.collected == [4]
        assert result.cycles <= 3

    def test_upstream_registration_adds_cycles(self):
        """Reversed registration order inserts a register per edge."""
        mgr = Manager("rev")
        snk = mgr.add_kernel(SinkKernel("snk"))
        m2 = mgr.add_kernel(MapKernel("m2", lambda x: x * 2))
        m1 = mgr.add_kernel(MapKernel("m1", lambda x: x + 1))
        src = mgr.add_kernel(SourceKernel("src", [1]))
        mgr.connect(src, "out", m1, "in")
        mgr.connect(m1, "out", m2, "in")
        mgr.connect(m2, "out", snk, "in")
        result = DFE(mgr, 100).run()
        assert snk.collected == [4]
        assert result.cycles >= 4
