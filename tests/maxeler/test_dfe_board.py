"""Gap-fill tests: DFE board model, clocking, and design resources."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import (
    DFE,
    Manager,
    SinkKernel,
    SourceKernel,
    VECTIS_PCIE,
    VectisBoard,
)
from repro.maxeler.manager import DesignResources, INTERKERNEL_STREAM_LUTS


class TestVectisBoard:
    def test_defaults(self):
        b = VectisBoard()
        assert b.name == "Vectis"
        assert b.fpga_name == "xc6vsx475t"
        assert b.lmem_bytes == 24 * 1024**3
        assert b.pcie.call_overhead_ns == VECTIS_PCIE.call_overhead_ns


class TestDFE:
    def make(self, clock=100):
        mgr = Manager("m")
        src = mgr.add_kernel(SourceKernel("s", range(3)))
        snk = mgr.add_kernel(SinkKernel("k"))
        mgr.connect(src, "out", snk, "in")
        return DFE(mgr, clock_mhz=clock)

    def test_cycle_time(self):
        dfe = self.make(clock=200)
        assert dfe.cycle_ns == pytest.approx(5.0)
        assert dfe.cycles_to_ns(100) == pytest.approx(500.0)

    def test_freezes_design(self):
        dfe = self.make()
        with pytest.raises(SimulationError, match="frozen"):
            dfe.manager.add_kernel(SinkKernel("late"))

    def test_custom_board(self):
        mgr = Manager("m")
        board = VectisBoard(lmem_bytes=1 << 30)
        dfe = DFE(mgr, 100, board=board)
        assert dfe.board.lmem_bytes == 1 << 30


class TestDesignResources:
    def test_kernel_luts_summed(self):
        mgr = Manager("m", style="modular")
        a = mgr.add_kernel(SourceKernel("a", []))
        b = mgr.add_kernel(SinkKernel("b"))
        mgr.connect(a, "out", b, "in")
        res = mgr.resources(kernel_luts={"a": 100, "b": 50})
        assert res.kernel_luts == 150
        assert res.interconnect_luts == INTERKERNEL_STREAM_LUTS
        assert res.total_luts == 150 + INTERKERNEL_STREAM_LUTS
        assert res.num_kernels == 2 and res.num_streams == 1

    def test_dataclass_fields(self):
        r = DesignResources(
            kernel_luts=10, interconnect_luts=5, num_kernels=1, num_streams=0
        )
        assert r.total_luts == 15
