"""Tests for the LMem (board DRAM) model."""

import numpy as np
import pytest

from repro.core.exceptions import AddressError, CapacityError
from repro.maxeler.lmem import LMem


@pytest.fixture
def lmem():
    return LMem(capacity_bytes=1 << 22, burst_latency_ns=200, bandwidth_gbps=38.4)


class TestStorage:
    def test_roundtrip(self, lmem):
        data = np.arange(1000, dtype=np.uint64)
        lmem.write(123, data)
        got, _ = lmem.read(123, 1000)
        assert (got == data).all()

    def test_zero_initialized(self, lmem):
        got, _ = lmem.read(0, 16)
        assert (got == 0).all()

    def test_cross_page_access(self, lmem):
        addr = LMem.PAGE_WORDS - 10
        data = np.arange(20, dtype=np.uint64)
        lmem.write(addr, data)
        got, _ = lmem.read(addr, 20)
        assert (got == data).all()

    def test_lazy_pages(self, lmem):
        lmem.write(0, np.arange(10, dtype=np.uint64))
        assert len(lmem._pages) == 1

    def test_bounds(self, lmem):
        with pytest.raises(AddressError):
            lmem.read(lmem.capacity_words - 1, 2)
        with pytest.raises(AddressError):
            lmem.write(-1, np.arange(2, dtype=np.uint64))

    def test_capacity_validation(self):
        with pytest.raises(CapacityError):
            LMem(capacity_bytes=7)

    def test_matrix_roundtrip(self, lmem):
        tile = np.arange(6 * 9, dtype=np.uint64).reshape(6, 9)
        lmem.write_matrix(100, tile, row_stride=64)
        got, _ = lmem.read_matrix(100, 6, 9, row_stride=64)
        assert (got == tile).all()

    def test_strided_rows_dont_clobber(self, lmem):
        tile = np.ones((2, 4), dtype=np.uint64)
        lmem.write_matrix(0, tile, row_stride=10)
        # words between the rows stay zero
        got, _ = lmem.read(4, 6)
        assert (got == 0).all()


class TestTiming:
    def test_burst_cost(self, lmem):
        ns = lmem.write(0, np.arange(100, dtype=np.uint64))
        assert ns == pytest.approx(200 + 100 * 8 / 38.4)

    def test_latency_dominates_small_bursts(self, lmem):
        small = lmem.write(0, np.arange(1, dtype=np.uint64))
        assert small == pytest.approx(200, rel=0.01)

    def test_busy_accumulates(self, lmem):
        lmem.write(0, np.arange(10, dtype=np.uint64))
        lmem.read(0, 10)
        assert lmem.busy_ns == pytest.approx(2 * (200 + 80 / 38.4))

    def test_traffic_counters(self, lmem):
        lmem.write(0, np.arange(10, dtype=np.uint64))
        lmem.read(0, 4)
        assert lmem.bytes_written == 80
        assert lmem.bytes_read == 32

    def test_matrix_pays_latency_per_row(self, lmem):
        ns = lmem.write_matrix(0, np.zeros((5, 8), dtype=np.uint64), row_stride=16)
        assert ns == pytest.approx(5 * (200 + 64 / 38.4))
