"""Unit tests for dataflow streams."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler.stream import Stream


class TestStream:
    def test_fifo_order(self):
        s = Stream("s")
        for v in (1, 2, 3):
            s.push(v)
        assert [s.pop(), s.pop(), s.pop()] == [1, 2, 3]

    def test_capacity_and_backpressure(self):
        s = Stream("s", capacity=2)
        s.push(1)
        assert s.can_push()
        s.push(2)
        assert s.full and not s.can_push()
        with pytest.raises(SimulationError, match="overflow"):
            s.push(3)

    def test_underflow(self):
        s = Stream("s")
        with pytest.raises(SimulationError, match="underflow"):
            s.pop()

    def test_peek(self):
        s = Stream("s")
        s.push(42)
        assert s.peek() == 42
        assert len(s) == 1
        with pytest.raises(SimulationError):
            Stream("t").peek()

    def test_unbounded(self):
        s = Stream("s", capacity=None)
        for v in range(1000):
            s.push(v)
        assert not s.full and s.can_push()

    def test_drain(self):
        s = Stream("s")
        for v in range(5):
            s.push(v)
        assert s.drain() == [0, 1, 2, 3, 4]
        assert s.empty

    def test_counters(self):
        s = Stream("s")
        s.push(1)
        s.push(2)
        s.pop()
        s.drain()
        assert s.total_pushed == 2 and s.total_popped == 2

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Stream("s", capacity=0)
