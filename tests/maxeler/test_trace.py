"""Tests for the simulation trace recorder."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import (
    DelayKernel,
    Manager,
    MuxKernel,
    SinkKernel,
    SourceKernel,
    TraceRecorder,
)


def pipeline(n=6, latency=3):
    mgr = Manager("traced")
    src = mgr.add_kernel(SourceKernel("src", range(n)))
    dly = mgr.add_kernel(DelayKernel("dly", latency))
    snk = mgr.add_kernel(SinkKernel("snk"))
    mgr.connect(src, "out", dly, "in")
    mgr.connect(dly, "out", snk, "in")
    return mgr, snk


class TestTraceRecorder:
    def test_records_every_cycle(self):
        mgr, snk = pipeline()
        rec = TraceRecorder(mgr)
        result = rec.run()
        assert result.quiesced
        assert len(rec.events) == result.cycles
        assert snk.collected == list(range(6))

    def test_waveform_renders(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr)
        rec.run()
        wf = rec.waveform()
        assert "src" in wf and "#" in wf and "." in wf

    def test_empty_waveform(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr)
        assert rec.waveform() == "(no trace)"

    def test_utilization_bounds(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr)
        rec.run()
        util = rec.utilization()
        assert set(util) == {"src", "dly", "snk"}
        assert all(0 <= v <= 1 for v in util.values())
        # the source only works for the first 6 cycles
        assert util["src"] < 1.0

    def test_peak_depths_with_slow_consumer(self):
        mgr = Manager("bp")
        src = mgr.add_kernel(SourceKernel("src", range(20)))
        mux = mgr.add_kernel(MuxKernel("mux", 1))
        sel = mgr.add_kernel(SourceKernel("sel", [0] * 20))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(src, "out", mux, "in0", capacity=4)
        mgr.connect(sel, "out", mux, "select", capacity=4)
        mgr.connect(mux, "out", snk, "in", capacity=4)
        rec = TraceRecorder(mgr)
        rec.run()
        peaks = rec.peak_depths()
        assert max(peaks.values()) >= 1

    def test_event_window_bounded(self):
        mgr, _ = pipeline(n=50)
        rec = TraceRecorder(mgr, max_events=10)
        rec.run()
        assert len(rec.events) == 10

    def test_deadlock_keeps_trace(self):
        mgr = Manager("dead")
        mux = mgr.add_kernel(MuxKernel("mux", 1))
        src = mgr.add_kernel(SourceKernel("src", [1]))
        sel = mgr.add_kernel(SourceKernel("sel", []))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(src, "out", mux, "in0")
        mgr.connect(sel, "out", mux, "select")
        mgr.connect(mux, "out", snk, "in")
        rec = TraceRecorder(mgr)
        with pytest.raises(SimulationError, match="deadlock"):
            rec.run(until=lambda: len(snk.collected) == 1)
        assert rec.events  # the post-mortem evidence survives

    def test_batched_engine_traces_chunks(self):
        # large pipeline so the batched engine actually fast-forwards
        # chunks; tracing must still yield one event per simulated cycle
        mgr, snk = pipeline(n=200, latency=3)
        rec = TraceRecorder(mgr)
        result = rec.run(engine="batched")
        assert result.quiesced
        assert snk.collected == list(range(200))
        assert len(rec.events) == result.cycles
        assert [e.cycle for e in rec.events] == list(
            range(1, result.cycles + 1)
        )
        assert any(k.batched_cycles for k in mgr.kernels.values())
        # chunked cycles report kernel activity, same as scalar ones
        assert any("dly" in e.active_kernels for e in rec.events)

    def test_engines_agree_on_trace_shape(self):
        runs = {}
        for engine in ("scalar", "batched"):
            mgr, _ = pipeline(n=120, latency=4)
            rec = TraceRecorder(mgr)
            result = rec.run(engine=engine)
            runs[engine] = (result.cycles, len(rec.events))
        assert runs["scalar"] == runs["batched"]

    def test_watch_streams_filter(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr, watch_streams=("src.out->dly.in",))
        rec.run()
        assert set(rec.peak_depths()) == {"src.out->dly.in"}


class TestAttachDetachIdempotency:
    def test_double_attach_does_not_double_count(self):
        # regression: attach() used to append unconditionally, so a manual
        # attach followed by run() (which attaches too) snapshotted every
        # cycle twice
        mgr, snk = pipeline()
        rec = TraceRecorder(mgr)
        rec.attach()
        rec.attach()
        assert rec.simulator.observers.count(rec) == 1
        result = rec.run()
        assert len(rec.events) == result.cycles
        assert snk.collected == list(range(6))

    def test_detach_is_idempotent(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr)
        rec.detach()  # never attached: no-op
        rec.attach()
        rec.detach()
        rec.detach()
        assert rec not in rec.simulator.observers

    def test_run_detaches_afterwards(self):
        mgr, _ = pipeline()
        rec = TraceRecorder(mgr)
        rec.run()
        assert rec not in rec.simulator.observers

    def test_manual_attach_run_counts_once_per_cycle(self):
        mgr, _ = pipeline(n=40, latency=2)
        rec = TraceRecorder(mgr)
        result = rec.attach().simulator.run()
        assert len(rec.events) == result.cycles
        assert [e.cycle for e in rec.events] == list(
            range(1, result.cycles + 1)
        )
