"""Regression tests pinning the exact-inclusive ``max_cycles`` semantics.

The budget is a hard inclusive bound: a run needing exactly ``max_cycles``
cycles completes, one needing more raises with *exactly* ``max_cycles``
consumed — every tick, including the idle quiescence-probe tick, is
charged against it.  Both engines must agree.
"""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import (
    Manager,
    Predicate,
    SinkKernel,
    SourceKernel,
    Simulator,
)


def _linear(n):
    mgr = Manager("budget")
    src = mgr.add_kernel(SourceKernel("src", range(n)))
    snk = mgr.add_kernel(SinkKernel("snk"))
    mgr.connect(src, "out", snk, "in")
    return mgr, snk


def _collected(snk, target):
    """Stop once *target* elements arrived; the horizon is exact (the sink
    collects at most one element per cycle), so chunking stays enabled."""
    return Predicate(
        lambda: len(snk.collected) >= target,
        horizon=lambda: max(0, target - len(snk.collected)),
    )


@pytest.mark.parametrize("engine", ["scalar", "batched"])
class TestExactBudget:
    def test_exact_budget_completes(self, engine):
        """Draining 20 elements takes exactly 20 cycles (the sink pops in
        the same cycle the source pushes) — a budget of 20 must succeed."""
        mgr, snk = _linear(20)
        sim = Simulator(mgr, engine=engine)
        sim.run(until=_collected(snk, 20), max_cycles=20)
        assert sim.cycles == 20
        assert snk.collected == list(range(20))

    def test_one_short_raises_with_budget_consumed(self, engine):
        """One cycle less raises, having consumed exactly the budget —
        the over-budget tick is never executed."""
        mgr, snk = _linear(20)
        sim = Simulator(mgr, engine=engine)
        with pytest.raises(SimulationError, match="exceeded 19 cycles"):
            sim.run(until=_collected(snk, 20), max_cycles=19)
        assert sim.cycles == 19
        assert snk.collected == list(range(19))

    def test_probe_tick_charged(self, engine):
        """An unsatisfiable predicate on an idle design: the quiescence
        probe ticks count against the budget, so the run raises at
        exactly ``max_cycles``, never at ``max_cycles + 1``."""
        mgr, _ = _linear(0)  # nothing to do: every tick is idle
        sim = Simulator(mgr, engine=engine)
        never = Predicate(lambda: False, horizon=lambda: 1)
        with pytest.raises(SimulationError, match="exceeded 1 cycles"):
            sim.run(until=never, max_cycles=1)
        assert sim.cycles == 1

    def test_zero_budget(self, engine):
        mgr, _ = _linear(5)
        sim = Simulator(mgr, engine=engine)
        never = Predicate(lambda: False, horizon=lambda: 1)
        with pytest.raises(SimulationError, match="exceeded 0 cycles"):
            sim.run(until=never, max_cycles=0)
        assert sim.cycles == 0
