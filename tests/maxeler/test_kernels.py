"""Unit tests for the generic kernel library and the tick simulator."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import (
    DFE,
    BinOpKernel,
    DelayKernel,
    DemuxKernel,
    Manager,
    MapKernel,
    MuxKernel,
    SinkKernel,
    SourceKernel,
)


def build_linear(*kernels, capacity=16):
    """Wire kernels in a chain source->...->sink and return the manager."""
    mgr = Manager("linear")
    for k in kernels:
        mgr.add_kernel(k)
    for a, b in zip(kernels, kernels[1:]):
        port_out = "out"
        port_in = "in"
        mgr.connect(a, port_out, b, port_in, capacity=capacity)
    return mgr


class TestPipelines:
    def test_source_to_sink(self):
        src, snk = SourceKernel("src", range(5)), SinkKernel("snk")
        mgr = build_linear(src, snk)
        DFE(mgr, 100).run()
        assert snk.collected == [0, 1, 2, 3, 4]

    def test_map(self):
        src = SourceKernel("src", [1, 2, 3])
        sq = MapKernel("sq", lambda x: x * x)
        snk = SinkKernel("snk")
        DFE(build_linear(src, sq, snk), 100).run()
        assert snk.collected == [1, 4, 9]

    def test_delay_preserves_order_and_latency(self):
        src = SourceKernel("src", range(4))
        dly = DelayKernel("dly", 5)
        snk = SinkKernel("snk")
        res = DFE(build_linear(src, dly, snk), 100).run()
        assert snk.collected == [0, 1, 2, 3]
        # last element leaves >= 5 cycles after entering
        assert res.cycles >= 4 + 5

    def test_delay_single_element_long_latency(self):
        """A lone element must survive an idle pipeline (regression: the
        simulator used to flag the latency wait as a deadlock)."""
        src = SourceKernel("src", [7])
        dly = DelayKernel("dly", 20)
        snk = SinkKernel("snk")
        DFE(build_linear(src, dly, snk), 100).run()
        assert snk.collected == [7]

    def test_delay_validates_latency(self):
        with pytest.raises(SimulationError):
            DelayKernel("d", 0)

    def test_binop(self):
        mgr = Manager("add")
        a = mgr.add_kernel(SourceKernel("a", [1, 2, 3]))
        b = mgr.add_kernel(SourceKernel("b", [10, 20, 30]))
        add = mgr.add_kernel(BinOpKernel("add", lambda x, y: x + y))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(a, "out", add, "a")
        mgr.connect(b, "out", add, "b")
        mgr.connect(add, "out", snk, "in")
        DFE(mgr, 100).run()
        assert snk.collected == [11, 22, 33]

    def test_backpressure_stalls_producer(self):
        """A slow consumer with a tiny FIFO must not lose data."""
        mgr = Manager("bp")
        src = mgr.add_kernel(SourceKernel("src", range(50)))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(src, "out", snk, "in", capacity=1)
        DFE(mgr, 100).run()
        assert snk.collected == list(range(50))


class TestMuxDemux:
    def test_mux_routes_by_select(self):
        mgr = Manager("mux")
        a = mgr.add_kernel(SourceKernel("a", [1, 2]))
        b = mgr.add_kernel(SourceKernel("b", [10]))
        sel = mgr.add_kernel(SourceKernel("sel", [0, 1, 0]))
        mux = mgr.add_kernel(MuxKernel("mux", 2))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(a, "out", mux, "in0")
        mgr.connect(b, "out", mux, "in1")
        mgr.connect(sel, "out", mux, "select")
        mgr.connect(mux, "out", snk, "in")
        DFE(mgr, 100).run()
        assert snk.collected == [1, 10, 2]

    def test_demux_routes_by_select(self):
        mgr = Manager("demux")
        src = mgr.add_kernel(SourceKernel("src", [1, 2, 3, 4]))
        sel = mgr.add_kernel(SourceKernel("sel", [0, 1, 1, 0]))
        dmx = mgr.add_kernel(DemuxKernel("dmx", 2))
        s0 = mgr.add_kernel(SinkKernel("s0"))
        s1 = mgr.add_kernel(SinkKernel("s1"))
        mgr.connect(src, "out", dmx, "in")
        mgr.connect(sel, "out", dmx, "select")
        mgr.connect(dmx, "out0", s0, "in")
        mgr.connect(dmx, "out1", s1, "in")
        DFE(mgr, 100).run()
        assert s0.collected == [1, 4]
        assert s1.collected == [2, 3]

    def test_mux_select_out_of_range(self):
        mgr = Manager("mux")
        a = mgr.add_kernel(SourceKernel("a", [1]))
        sel = mgr.add_kernel(SourceKernel("sel", [3]))
        mux = mgr.add_kernel(MuxKernel("mux", 1))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(a, "out", mux, "in0")
        mgr.connect(sel, "out", mux, "select")
        mgr.connect(mux, "out", snk, "in")
        with pytest.raises(SimulationError, match="out of range"):
            DFE(mgr, 100).run()


class TestSimulatorBehaviour:
    def test_quiescence_detected(self):
        src, snk = SourceKernel("src", range(3)), SinkKernel("snk")
        res = DFE(build_linear(src, snk), 100).run()
        assert res.quiesced

    def test_until_predicate(self):
        src, snk = SourceKernel("src", range(100)), SinkKernel("snk")
        dfe = DFE(build_linear(src, snk), 100)
        dfe.run(until=lambda: len(snk.collected) >= 10)
        assert len(snk.collected) in (10, 11)

    def test_cycle_budget_enforced(self):
        src, snk = SourceKernel("src", range(1000)), SinkKernel("snk")
        dfe = DFE(build_linear(src, snk), 100)
        with pytest.raises(SimulationError, match="exceeded"):
            dfe.run(max_cycles=5, until=lambda: False)

    def test_deadlock_detected(self):
        """A consumer waiting on data that never arrives deadlocks cleanly
        instead of spinning."""
        mgr = Manager("dead")
        snk = mgr.add_kernel(SinkKernel("snk"))
        mux = mgr.add_kernel(MuxKernel("mux", 1))
        src = mgr.add_kernel(SourceKernel("src", [1]))
        sel = mgr.add_kernel(SourceKernel("sel", []))  # never selects
        mgr.connect(src, "out", mux, "in0")
        mgr.connect(sel, "out", mux, "select")
        mgr.connect(mux, "out", snk, "in")
        dfe = DFE(mgr, 100)
        with pytest.raises(SimulationError, match="deadlock"):
            dfe.run(until=lambda: len(snk.collected) == 1)

    def test_activity_stats(self):
        src, snk = SourceKernel("src", range(3)), SinkKernel("snk")
        res = DFE(build_linear(src, snk), 100).run()
        assert 0 < res.kernel_activity["src"] <= 1.0

    def test_wall_time(self):
        src, snk = SourceKernel("src", range(3)), SinkKernel("snk")
        res = DFE(build_linear(src, snk), clock_mhz=100).run()
        assert res.wall_time_ns(100) == pytest.approx(res.cycles * 10.0)


class TestManager:
    def test_duplicate_kernel_rejected(self):
        mgr = Manager("m")
        mgr.add_kernel(SinkKernel("k"))
        with pytest.raises(SimulationError, match="duplicate"):
            mgr.add_kernel(SinkKernel("k"))

    def test_unregistered_kernel_rejected(self):
        mgr = Manager("m")
        a = SinkKernel("a")
        b = mgr.add_kernel(SourceKernel("b", []))
        with pytest.raises(SimulationError, match="not part of"):
            mgr.connect(b, "out", a, "in")

    def test_frozen_design_is_immutable(self):
        mgr = Manager("m")
        mgr.add_kernel(SinkKernel("k"))
        mgr.freeze()
        with pytest.raises(SimulationError, match="frozen"):
            mgr.add_kernel(SinkKernel("k2"))

    def test_double_bind_rejected(self):
        mgr = Manager("m")
        a = mgr.add_kernel(SourceKernel("a", []))
        b = mgr.add_kernel(SinkKernel("b"))
        c = mgr.add_kernel(SinkKernel("c"))
        mgr.connect(a, "out", b, "in")
        with pytest.raises(SimulationError, match="already bound"):
            mgr.connect(a, "out", c, "in")

    def test_style_validation(self):
        with pytest.raises(SimulationError):
            Manager("m", style="baroque")

    def test_modular_pays_interconnect(self):
        def build(style):
            mgr = Manager("m", style=style)
            a = mgr.add_kernel(SourceKernel("a", []))
            b = mgr.add_kernel(MapKernel("b", lambda x: x))
            c = mgr.add_kernel(SinkKernel("c"))
            mgr.connect(a, "out", b, "in")
            mgr.connect(b, "out", c, "in")
            return mgr.resources()

        assert build("modular").interconnect_luts > 0
        assert build("fused").interconnect_luts == 0

    def test_host_streams_not_counted_as_interconnect(self):
        mgr = Manager("m", style="modular")
        k = mgr.add_kernel(MapKernel("k", lambda x: x))
        mgr.host_to_kernel("in", k, "in")
        mgr.kernel_to_host("out", k, "out")
        assert mgr.resources().interconnect_luts == 0
