"""Tests for PCIe and host wall-clock accounting."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxeler import DFE, Host, Manager, MapKernel, PcieLink, VECTIS_PCIE


@pytest.fixture
def passthrough():
    mgr = Manager("pass")
    k = mgr.add_kernel(MapKernel("inc", lambda x: x + 1))
    mgr.host_to_kernel("in", k, "in")
    mgr.kernel_to_host("out", k, "out")
    dfe = DFE(mgr, clock_mhz=100)
    return Host(dfe), dfe


class TestPcieLink:
    def test_overhead_dominates_small_transfers(self):
        link = PcieLink(call_overhead_ns=300, bandwidth_gbps=2)
        assert link.transfer_ns(0) == 300
        assert link.signal_ns() == 300

    def test_payload_time(self):
        link = PcieLink(call_overhead_ns=300, bandwidth_gbps=2)
        # 2 GB/s == 2 bytes/ns
        assert link.transfer_ns(2000) == pytest.approx(300 + 1000)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            VECTIS_PCIE.transfer_ns(-1)

    def test_vectis_matches_paper_overhead(self):
        assert VECTIS_PCIE.call_overhead_ns == 300.0


class TestHost:
    def test_write_stream_charges_pcie(self, passthrough):
        host, _ = passthrough
        host.begin_stage("load")
        n = host.write_stream("in", range(10))
        assert n == 10
        stage = host.stage("load")
        assert stage.calls == 1
        assert stage.payload_bytes == 80
        assert stage.pcie_ns == pytest.approx(300 + 80 / 2)

    def test_run_kernel_charges_cycles(self, passthrough):
        host, dfe = passthrough
        host.write_stream("in", range(10))
        host.begin_stage("run")
        out = dfe.manager.host_output("out")
        host.run_kernel(until=lambda: len(out) == 10)
        stage = host.stage("run")
        assert stage.compute_ns > 0
        # 100 MHz -> 10 ns per cycle
        assert stage.compute_ns == pytest.approx(dfe.simulator.cycles * 10.0)

    def test_read_stream_returns_results(self, passthrough):
        host, dfe = passthrough
        host.write_stream("in", range(5))
        out = dfe.manager.host_output("out")
        host.run_kernel(until=lambda: len(out) == 5)
        assert host.read_stream("out") == [1, 2, 3, 4, 5]

    def test_stage_separation(self, passthrough):
        host, dfe = passthrough
        host.begin_stage("a")
        host.signal()
        host.begin_stage("b")
        host.signal()
        host.signal()
        assert host.stage("a").calls == 1
        assert host.stage("b").calls == 2
        assert host.clock_ns == pytest.approx(3 * 300)

    def test_unknown_stage(self, passthrough):
        host, _ = passthrough
        with pytest.raises(SimulationError):
            host.stage("nope")

    def test_charge_external_compute(self, passthrough):
        host, _ = passthrough
        host.begin_stage("x")
        host.charge_external_compute(1000)
        # 1000 cycles at 100 MHz = 10 us, plus one 300 ns call
        assert host.stage("x").total_ns == pytest.approx(10_000 + 300)

    def test_clock_positive(self):
        mgr = Manager("m")
        with pytest.raises(SimulationError):
            DFE(mgr, clock_mhz=0)
