"""The backend what-if sweep and the generalized lane-grid factorization."""

import pytest

from repro.backend import get_backend
from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import ConfigurationError
from repro.core.schemes import Scheme
from repro.dse.whatif import (
    DEFAULT_WHATIF_BACKENDS,
    DeviceWhatIf,
    lane_grid_for,
    whatif_devices,
)


class TestLaneGridFor:
    def test_reproduces_historical_picks(self):
        """The old {8, 16, 32} lookup table is a special case."""
        assert lane_grid_for(8) == (2, 4)
        assert lane_grid_for(16) == (2, 8)
        assert lane_grid_for(32) == (4, 8)

    @pytest.mark.parametrize("lanes", [2, 4, 6, 12, 24, 64, 128])
    def test_generic_lane_counts_factor(self, lanes):
        p, q = lane_grid_for(lanes)
        assert p * q == lanes
        assert q <= 8

    def test_retr_prefers_divisible_grids(self):
        """ReTr needs p | q or q | p; 6 lanes must avoid the 2x3 split."""
        p, q = lane_grid_for(6, Scheme.ReTr)
        assert p * q == 6
        assert p % q == 0 or q % p == 0

    @pytest.mark.parametrize("lanes", [0, 1, -4])
    def test_too_few_lanes_is_a_configuration_error(self, lanes):
        """The seed raised a bare KeyError here; now the failure names
        the constraint."""
        with pytest.raises(ConfigurationError, match="lanes"):
            lane_grid_for(lanes)


class TestWhatifDevices:
    @pytest.fixture(scope="class")
    def rows(self):
        return whatif_devices()

    def test_sweeps_at_least_three_backends(self, rows):
        assert len(DEFAULT_WHATIF_BACKENDS) >= 3
        assert [r.backend for r in rows] == list(DEFAULT_WHATIF_BACKENDS)
        assert {r.kind for r in rows} >= {"bram", "dram", "sharded"}

    def test_default_config_fits_everywhere(self, rows):
        assert all(r.feasible for r in rows)

    def test_bram_rows_achieve_peak_regardless_of_stride(self, rows):
        vectis = next(r for r in rows if r.backend == "vectis")
        assert vectis.strided_gbps == pytest.approx(vectis.peak_read_gbps)
        assert vectis.layout_speedup == pytest.approx(1.0)

    def test_dram_rows_gain_from_layout(self, rows):
        """The ISSUE's acceptance bar, via the sweep surface."""
        for name in ("dram", "hbm2"):
            row = next(r for r in rows if r.backend == name)
            assert row.layout_speedup >= 1.5
            assert row.layout_gbps <= row.peak_read_gbps + 1e-9
            assert row.sequential_gbps >= row.strided_gbps

    def test_accepts_instances_and_subsets(self):
        rows = whatif_devices(backends=[get_backend("hbm2")])
        assert [r.backend for r in rows] == ["hbm2"]

    def test_rows_serialize(self, rows):
        for row in rows:
            doc = row.to_dict()
            assert doc["backend"] == row.backend
            assert doc["layout_speedup"] == row.layout_speedup
            assert doc["detail"]["strided"]["bursts"] >= 0

    def test_infeasible_config_is_reported_not_raised(self):
        """64 MB blows past the SX475T's BRAM but fits an HBM2 stack —
        the sweep reports both verdicts instead of raising."""
        huge = PolyMemConfig(64 * 1024 * KB, p=2, q=4, scheme=Scheme.ReRo)
        rows = {r.backend: r for r in whatif_devices(huge, backends=("vectis", "hbm2"))}
        assert not rows["vectis"].feasible
        assert rows["hbm2"].feasible
        assert isinstance(rows["vectis"], DeviceWhatIf)
