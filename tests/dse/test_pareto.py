"""Tests for Pareto-frontier DSE analysis."""

import pytest

from repro.dse import explore
from repro.dse.pareto import best_under_budget, pareto_frontier


@pytest.fixture(scope="module")
def result():
    return explore()


class TestParetoFrontier:
    def test_frontier_nonempty_and_sorted(self, result):
        frontier = pareto_frontier(result)
        assert frontier
        bws = [p.read_gbps for p in frontier]
        assert bws == sorted(bws, reverse=True)

    def test_no_point_on_frontier_is_dominated(self, result):
        frontier = pareto_frontier(result)
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominated = (
                    b.read_gbps >= a.read_gbps
                    and b.bram_pct <= a.bram_pct
                    and b.logic_pct <= a.logic_pct
                    and (
                        b.read_gbps > a.read_gbps
                        or b.bram_pct < a.bram_pct
                        or b.logic_pct < a.logic_pct
                    )
                )
                assert not dominated, (a.label, b.label)

    def test_peak_bandwidth_point_on_frontier(self, result):
        frontier = pareto_frontier(result)
        assert frontier[0].read_gbps == pytest.approx(result.peak_read_gbps)

    def test_frontier_is_much_smaller_than_grid(self, result):
        frontier = pareto_frontier(result)
        assert len(frontier) < len(result.points) / 2

    def test_model_source(self, result):
        frontier = pareto_frontier(result, frequency_source="model")
        assert frontier


class TestBudgetQueries:
    def test_unconstrained_is_global_peak(self, result):
        best = best_under_budget(result)
        assert best.bandwidth.read_gbps == pytest.approx(result.peak_read_gbps)

    def test_bram_budget_limits_choice(self, result):
        tight = best_under_budget(result, max_bram_pct=30)
        loose = best_under_budget(result, max_bram_pct=100)
        assert tight.bram_pct <= 30
        assert tight.bandwidth.read_gbps <= loose.bandwidth.read_gbps

    def test_capacity_floor(self, result):
        big = best_under_budget(result, min_capacity_kb=4096)
        assert big.capacity_kb == 4096

    def test_impossible_budget(self, result):
        assert best_under_budget(result, max_bram_pct=1) is None

    def test_logic_budget(self, result):
        frugal = best_under_budget(result, max_logic_pct=12)
        assert frugal is not None and frugal.logic_pct <= 12
