"""Tests for the Table III design space."""


from repro.core.schemes import Scheme
from repro.dse.space import LANE_GRIDS, PAPER_SPACE, DesignSpace
from repro.hw.calibration import TABLE_IV_COLUMNS


class TestPaperSpace:
    def test_matches_table_iv_columns_exactly(self):
        """The feasible grid is exactly the paper's 18 Table IV columns."""
        assert tuple(PAPER_SPACE.columns()) == TABLE_IV_COLUMNS

    def test_size(self):
        assert PAPER_SPACE.size() == 5 * 18

    def test_infeasible_points_excluded(self):
        labels = {
            (c.capacity_bytes // 1024, c.lanes, c.read_ports)
            for c in PAPER_SPACE.points()
        }
        assert (4096, 8, 2) not in labels  # 8 MB of data > device BRAM
        assert (2048, 8, 3) not in labels
        assert (512, 16, 3) not in labels  # 16-lane port cap
        assert (512, 16, 4) not in labels

    def test_all_points_included_when_unfiltered(self):
        assert PAPER_SPACE.size(feasible_only=False) == 5 * 4 * 2 * 4

    def test_lane_grids(self):
        assert LANE_GRIDS == {8: (2, 4), 16: (2, 8)}

    def test_config_construction(self):
        cfg = PAPER_SPACE.config(512, 16, 2, Scheme.ReTr)
        assert (cfg.p, cfg.q) == (2, 8)
        assert cfg.read_ports == 2
        assert cfg.capacity_bytes == 512 * 1024

    def test_scheme_points_order(self):
        pts = list(PAPER_SPACE.scheme_points(Scheme.ReO))
        labels = [
            (c.capacity_bytes // 1024, c.lanes, c.read_ports) for c in pts
        ]
        assert labels == list(TABLE_IV_COLUMNS)


class TestCustomSpace:
    def test_smaller_space(self):
        space = DesignSpace(
            capacities_kb=(512,),
            lane_counts=(8,),
            read_ports=(1, 2),
            schemes=(Scheme.ReRo,),
        )
        assert space.size() == 2

    def test_port_cap_default_for_unknown_lanes(self):
        space = DesignSpace(max_ports_by_lanes=())
        # without a cap, 16-lane 4-port 512KB is BRAM-feasible
        labels = {
            (c.capacity_bytes // 1024, c.lanes, c.read_ports)
            for c in space.points()
        }
        assert (512, 16, 4) in labels


class TestEnumerationMemo:
    """DesignSpace memoizes its (immutable) grid enumeration per instance."""

    def test_repeated_enumeration_is_stable_and_cheap(self):
        space = DesignSpace()
        first = list(space.points())
        again = list(space.points())
        assert first == again
        # the tuple behind the iterator is built once and reused
        assert ("points", True) in space.__dict__["_memo"]
        assert tuple(first) == space.__dict__["_memo"][("points", True)]

    def test_size_agrees_with_points(self):
        space = DesignSpace()
        assert space.size() == len(list(space.points()))
        assert space.size(feasible_only=False) == len(
            list(space.points(feasible_only=False))
        )

    def test_feasibility_memo_counts_one_bram_check_per_config(self):
        calls = []
        import repro.dse.space as space_mod

        real = space_mod.polymem_bram_usage

        def counting(cfg, blocks):
            calls.append(cfg)
            return real(cfg, blocks)

        space = DesignSpace()
        try:
            space_mod.polymem_bram_usage = counting
            space.points()
            space.columns()
            space.size()
            first = len(calls)
            space.points()
            space.columns()
            assert len(calls) == first
        finally:
            space_mod.polymem_bram_usage = real

    def test_memo_does_not_affect_equality_or_hash(self):
        a, b = DesignSpace(), DesignSpace()
        list(a.points())  # populate one memo only
        assert a == b
        assert hash(a) == hash(b)
