"""Detail tests for the DSE renderers and lookup helpers."""

import pytest

from repro.core.schemes import Scheme
from repro.dse import (
    DesignSpace,
    column_label,
    explore,
    figure_series,
    render_series_table,
    render_table_iv,
    to_csv,
)


@pytest.fixture(scope="module")
def small_result():
    return explore(
        DesignSpace(
            capacities_kb=(512, 1024),
            lane_counts=(8,),
            read_ports=(1, 2),
            schemes=(Scheme.ReO, Scheme.ReTr),
        )
    )


class TestColumnLabel:
    def test_format(self):
        assert column_label(512, 8, 1) == "512,8,1"
        assert column_label(4096, 16, 4) == "4096,16,4"


class TestSeries:
    def test_columns_in_paper_order(self, small_result):
        series = figure_series(small_result, lambda p: p.model_mhz)
        labels = [l for l, _ in series[Scheme.ReO]]
        assert labels == ["512,8,1", "512,8,2", "1024,8,1", "1024,8,2"]

    def test_series_values_match_points(self, small_result):
        series = figure_series(small_result, lambda p: p.bram_pct)
        for scheme, row in series.items():
            for label, value in row:
                cap, lanes, ports = (int(x) for x in label.split(","))
                point = small_result.lookup(scheme, cap, lanes, ports)
                assert value == point.bram_pct

    def test_table_renders_both_schemes(self, small_result):
        text = render_series_table(
            figure_series(small_result, lambda p: p.model_mhz), "T", "MHz"
        )
        assert "ReO" in text and "ReTr" in text
        assert "T [MHz]" in text

    def test_csv_has_header_plus_scheme_rows(self, small_result):
        csv = to_csv(figure_series(small_result, lambda p: p.model_mhz))
        lines = csv.strip().splitlines()
        assert len(lines) == 3
        assert lines[0] == "scheme,512,8,1,512,8,2,1024,8,1,1024,8,2"


class TestTableIvRendering:
    def test_model_source_has_no_parens(self, small_result):
        text = render_table_iv(small_result, source="model")
        assert "(" not in text.splitlines()[2]

    def test_both_source_shows_paper_in_parens(self, small_result):
        text = render_table_iv(small_result, source="both")
        assert "(202)" in text  # the ReO/512K/8L/1P paper cell

    def test_paper_source(self, small_result):
        text = render_table_iv(small_result, source="paper")
        assert "  202.0" in text


class TestResultHelpers:
    def test_best_with_custom_key(self, small_result):
        frugal = small_result.best(lambda p: -p.bram_pct)
        assert frugal.bram_pct == min(p.bram_pct for p in small_result.points)

    def test_by_scheme(self, small_result):
        reo = small_result.by_scheme(Scheme.ReO)
        assert len(reo) == 4
        assert all(p.config.scheme is Scheme.ReO for p in reo)

    def test_lookup_missing_returns_none(self, small_result):
        assert small_result.lookup(Scheme.ReRo, 512, 8, 1) is None
