"""--backend threading through explore()/bandwidth helpers.

The acceptance bar: retargeting the sweep at the ``vectis`` backend must
leave every payload byte-identical to the default path, while other
backends actually swap the synthesis device."""

import pytest

from repro.backend import AddressStream, get_backend
from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import ConfigurationError
from repro.core.schemes import Scheme
from repro.dse import DesignSpace, backend_peaks, explore
from repro.dse.bandwidth import achieved_bandwidth
from repro.dse.report import dse_report

SMALL = DesignSpace(
    capacities_kb=(512,),
    lane_counts=(8,),
    read_ports=(1, 2),
    schemes=(Scheme.ReRo, Scheme.RoCo),
)


def cfg():
    return PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo)


class TestExploreBackend:
    def test_default_records_no_backend(self):
        assert explore(SMALL).backend is None

    def test_vectis_backend_is_byte_identical(self):
        import json

        seed = explore(SMALL)
        routed = explore(SMALL, backend="vectis")
        assert routed.backend == "vectis"
        assert routed.space.device.name == seed.space.device.name
        assert routed.points == seed.points
        # the report payloads match entry for entry (meta carries wall-clock
        # sweep timings, which are not part of the byte-identity contract)
        seed_doc = json.loads(dse_report(seed).to_json())
        routed_doc = json.loads(dse_report(routed).to_json())
        assert routed_doc["entries"] == seed_doc["entries"]

    def test_lx240t_swaps_the_synthesis_device(self):
        routed = explore(SMALL, backend="lx240t")
        assert routed.backend == "lx240t"
        assert routed.space.device.name == "xc6vlx240t"
        seed = explore(SMALL)
        assert routed.points != seed.points

    def test_dram_backend_keeps_the_vectis_fabric(self):
        routed = explore(SMALL, backend="dram")
        assert routed.backend == "dram"
        assert routed.space.device.name == explore(SMALL).space.device.name

    def test_backend_instance_accepted(self):
        routed = explore(SMALL, backend=get_backend("hbm2"))
        assert routed.backend == "hbm2"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="available"):
            explore(SMALL, backend="warp-core")


class TestBandwidthHelpers:
    def test_backend_peaks_match_dse_point(self):
        """backend_peaks('vectis') is DsePoint.bandwidth, bit for bit."""
        result = explore(SMALL)
        for point in result.points:
            report = backend_peaks(point.config, "vectis")
            assert report.clock_mhz == point.clock_mhz
            assert report.write_gbps == point.bandwidth.write_gbps
            assert report.read_gbps == point.bandwidth.read_gbps

    def test_achieved_bandwidth_routes_by_name(self):
        stream = AddressStream.strided(4096, stride=64)
        on_chip = achieved_bandwidth(cfg(), stream, "vectis")
        off_chip = achieved_bandwidth(cfg(), stream, "dram")
        assert on_chip.achieved_gbps == on_chip.peak_gbps
        assert off_chip.achieved_gbps < off_chip.peak_gbps

    def test_achieved_bandwidth_honours_repro_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dram")
        stream = AddressStream.strided(1024, stride=64)
        default = achieved_bandwidth(cfg(), stream)
        explicit = achieved_bandwidth(cfg(), stream, "dram")
        assert default.achieved_gbps == explicit.achieved_gbps
        assert default.row_misses == explicit.row_misses
