"""Tests for cross-device feasibility exploration."""


from repro.core.schemes import Scheme
from repro.dse.whatif import FeasibilityPoint, feasibility_frontier, max_capacity_kb
from repro.hw.fpga import VIRTEX6_LX240T, VIRTEX6_SX475T


class TestMaxCapacity:
    def test_paper_device_hosts_4mb(self):
        """The '4MB parallel memory' headline, from first principles."""
        assert max_capacity_kb(VIRTEX6_SX475T) == 4096

    def test_ports_halve_capacity(self):
        one = max_capacity_kb(VIRTEX6_SX475T, read_ports=1)
        two = max_capacity_kb(VIRTEX6_SX475T, read_ports=2)
        assert two == one // 2

    def test_smaller_device_smaller_memory(self):
        assert max_capacity_kb(VIRTEX6_LX240T) < max_capacity_kb(VIRTEX6_SX475T)

    def test_lanes_do_not_change_capacity(self):
        assert max_capacity_kb(VIRTEX6_SX475T, lanes=16) == max_capacity_kb(
            VIRTEX6_SX475T, lanes=8
        )


class TestFrontier:
    def test_grid_size(self):
        pts = feasibility_frontier(VIRTEX6_SX475T)
        assert len(pts) == 5 * 2 * 4
        assert all(isinstance(p, FeasibilityPoint) for p in pts)

    def test_paper_grid_feasible_on_paper_device(self):
        pts = {
            (p.capacity_kb, p.lanes, p.read_ports): p
            for p in feasibility_frontier(VIRTEX6_SX475T)
        }
        from repro.hw.calibration import TABLE_IV_COLUMNS

        for cap, lanes, ports in TABLE_IV_COLUMNS:
            assert pts[(cap, lanes, ports)].feasible, (cap, lanes, ports)

    def test_infeasible_points_flagged(self):
        pts = {
            (p.capacity_kb, p.lanes, p.read_ports): p
            for p in feasibility_frontier(VIRTEX6_SX475T)
        }
        assert not pts[(4096, 8, 2)].feasible
        assert not pts[(2048, 8, 4)].feasible

    def test_small_device_frontier_shrinks(self):
        big = sum(p.feasible for p in feasibility_frontier(VIRTEX6_SX475T))
        small = sum(p.feasible for p in feasibility_frontier(VIRTEX6_LX240T))
        assert small < big

    def test_custom_scheme(self):
        pts = feasibility_frontier(
            VIRTEX6_SX475T, scheme=Scheme.ReO, capacities_kb=(512,)
        )
        assert len(pts) == 2 * 4
        assert pts[0].bram_pct > 0
