"""Tests for the DSE sweep and the paper's headline §IV claims."""

import pytest

from repro.core.schemes import Scheme
from repro.dse import (
    DesignSpace,
    explore,
    figure_series,
    render_series_table,
    render_table_iv,
    to_csv,
)
from repro.dse.bandwidth import BandwidthReport


@pytest.fixture(scope="module")
def result():
    return explore()


class TestExplore:
    def test_point_count(self, result):
        assert len(result.points) == 90

    def test_every_point_has_paper_frequency(self, result):
        """The feasible grid coincides with Table IV, so every point has a
        published frequency."""
        assert all(p.paper_mhz is not None for p in result.points)

    def test_lookup(self, result):
        p = result.lookup(Scheme.ReO, 512, 8, 1)
        assert p is not None and p.paper_mhz == 202
        assert result.lookup(Scheme.ReO, 4096, 8, 4) is None

    def test_model_tracks_paper(self, result):
        errs = [
            abs(p.model_mhz - p.paper_mhz) / p.paper_mhz for p in result.points
        ]
        assert sum(errs) / len(errs) < 0.10

    def test_clock_prefers_paper(self, result):
        p = result.lookup(Scheme.ReO, 512, 8, 1)
        assert p.clock_mhz == 202

    def test_bandwidth_at_sources(self, result):
        p = result.lookup(Scheme.ReO, 512, 8, 1)
        assert p.bandwidth_at("paper").write_gbps == pytest.approx(
            202e6 * 64 / 1e9
        )
        assert p.bandwidth_at("model").write_gbps != p.bandwidth_at(
            "paper"
        ).write_gbps
        with pytest.raises(ValueError):
            p.bandwidth_at("guess")
        q = result.lookup(Scheme.ReO, 512, 8, 2)
        assert q.bandwidth_at("paper").read_gbps == pytest.approx(
            2 * 160e6 * 64 / 1e9
        )


class TestPaperHeadlineClaims:
    """§IV's summary bullet points, reproduced from the sweep."""

    def test_peak_write_bandwidth_exceeds_22gbps(self, result):
        """'up to 22GB/s write bandwidth', from 512KB/16L ReO."""
        assert result.peak_write_gbps > 22.0
        best = result.best(lambda p: p.bandwidth.write_gbps)
        assert best.config.scheme is Scheme.ReO
        assert best.capacity_kb == 512 and best.config.lanes == 16

    def test_peak_multiview_write_about_20gbps(self, result):
        """'For the multiview schemes, the maximum achieved bandwidth is
        20GB/s for the ReRo configuration.'"""
        multiview = [
            p for p in result.points if p.config.scheme is not Scheme.ReO
            and p.config.scheme is not Scheme.ReTr
        ]
        best = max(multiview, key=lambda p: p.bandwidth.write_gbps)
        assert best.config.scheme is Scheme.ReRo
        assert best.bandwidth.write_gbps == pytest.approx(20.0, rel=0.10)

    def test_peak_read_bandwidth_above_32gbps(self, result):
        """'above 32GB/s' aggregated reads; the winner is the paper's
        512KB, 8-lane, 4-port ReTr design."""
        assert result.peak_read_gbps > 32.0
        best = result.best(lambda p: p.bandwidth.read_gbps)
        assert best.config.scheme is Scheme.ReTr
        assert (best.capacity_kb, best.config.lanes, best.config.read_ports) == (
            512,
            8,
            4,
        )

    def test_single_port_scales_linearly_with_lanes(self, result):
        """§IV-B: 'single-port bandwidth scales linearly when doubling
        number of memory banks from 8 to 16' — per cycle; the clock drop
        keeps the realized gain below 2x but above 1x."""
        for scheme in (Scheme.ReO, Scheme.ReRo):
            p8 = result.lookup(scheme, 512, 8, 1)
            p16 = result.lookup(scheme, 512, 16, 1)
            per_cycle_ratio = (
                p16.config.lanes / p8.config.lanes
            )
            assert per_cycle_ratio == 2.0
            realized = p16.bandwidth.write_gbps / p8.bandwidth.write_gbps
            assert 1.4 < realized < 2.0

    def test_capacity_reduces_bandwidth(self, result):
        """§IV-B: bandwidth drops when capacity grows at constant
        lanes/ports."""
        for scheme in Scheme:
            bws = [
                result.lookup(scheme, kb, 8, 1).bandwidth.write_gbps
                for kb in (512, 1024, 2048, 4096)
            ]
            assert bws[0] > bws[-1]

    def test_diminishing_returns_three_four_ports(self, result):
        """§IV-B: good scaling 1->2 ports, diminishing returns at 3-4."""
        p1 = result.lookup(Scheme.ReO, 512, 8, 1).bandwidth.read_gbps
        p2 = result.lookup(Scheme.ReO, 512, 8, 2).bandwidth.read_gbps
        p4 = result.lookup(Scheme.ReO, 512, 8, 4).bandwidth.read_gbps
        gain_12 = p2 / p1
        gain_24 = p4 / p2
        assert gain_12 > 1.4
        assert gain_24 < gain_12

    def test_4mb_memory_instantiable(self, result):
        """'allowing the instantiation of a 4MB parallel memory'."""
        assert result.lookup(Scheme.ReRo, 4096, 8, 1) is not None
        assert result.lookup(Scheme.ReRo, 4096, 16, 1) is not None

    def test_bram_up_to_97_pct(self, result):
        vals = [p.bram_pct for p in result.points]
        assert max(vals) >= 97.0
        assert min(vals) == pytest.approx(16.07, abs=0.5)


class TestRenderers:
    def test_table_iv_renders_all_sources(self, result):
        for source in ("model", "paper", "both"):
            text = render_table_iv(result, source=source)
            assert "ReTr" in text and "512K/8L/1R" in text
        with pytest.raises(ValueError):
            render_table_iv(result, source="x")

    def test_figure_series_shape(self, result):
        series = figure_series(result, lambda p: p.bandwidth.write_gbps)
        assert set(series) == set(Scheme)
        assert all(len(row) == 18 for row in series.values())

    def test_series_table_text(self, result):
        series = figure_series(result, lambda p: p.bram_pct)
        text = render_series_table(series, "BRAM", "%")
        assert "BRAM [%]" in text
        assert text.count("\n") >= 7

    def test_csv_export(self, result):
        series = figure_series(result, lambda p: p.lut_pct)
        csv = to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("scheme,")
        assert len(lines) == 6


class TestBandwidthReport:
    def test_formulas(self):
        from repro.core.config import KB, PolyMemConfig

        cfg = PolyMemConfig(512 * KB, p=2, q=4, read_ports=3)
        bw = BandwidthReport(cfg, clock_mhz=100)
        assert bw.write_gbps == pytest.approx(8 * 8 * 100e6 / 1e9)
        assert bw.read_gbps == pytest.approx(3 * bw.write_gbps)
        assert bw.total_gbps == pytest.approx(4 * bw.write_gbps)


class TestValidatedSweep:
    def test_small_space_validates(self):
        space = DesignSpace(
            capacities_kb=(512,),
            lane_counts=(8,),
            read_ports=(1,),
            schemes=(Scheme.ReRo, Scheme.ReTr),
        )
        res = explore(space, validate=True, validate_rows=8)
        assert all(p.validated for p in res.points)
