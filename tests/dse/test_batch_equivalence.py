"""Equivalence suite for the vectorized config-space evaluation.

The batch layer's one contract: every vectorized path — plan-table
builds, conflict chunks, slot-image validation, synthesis estimates, the
whole ``explore`` sweep — produces *byte-identical* results to the scalar
path it replaces.  These tests pin that contract, including the fallback
and error branches, with Hypothesis driving the config/anchor sampling.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import ConflictError
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.dse.explore import evaluate_point, evaluate_points_batch, explore
from repro.dse.pareto import pareto_frontier
from repro.dse.space import PAPER_SPACE, DesignSpace
from repro.maxpolymem.validation import (
    conflict_free_chunk,
    validate_config,
    validate_points_batch,
)

ALL_CONFIGS = list(PAPER_SPACE.points())

CHUNK_KINDS = [PatternKind.RECTANGLE, PatternKind.ROW, PatternKind.COLUMN]


def _payload_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _points_json(result) -> str:
    fields = ("paper_mhz", "model_mhz", "logic_pct", "lut_pct", "bram_pct",
              "validated")
    return json.dumps(
        [
            {"label": p.config.label(), **{f: getattr(p, f) for f in fields}}
            for p in result.points
        ],
        sort_keys=True,
        separators=(",", ":"),
    )


def _frontier_key(result):
    return [
        (c.label, c.read_gbps, c.bram_pct, c.logic_pct)
        for c in pareto_frontier(result)
    ]


class TestConflictFreeChunk:
    @settings(max_examples=25, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=len(ALL_CONFIGS) - 1),
        step=st.integers(min_value=1, max_value=17),
        kind=st.sampled_from(CHUNK_KINDS),
        anchors=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.integers(min_value=0, max_value=300),
            ),
            min_size=1,
            max_size=24,
        ),
    )
    def test_vectorized_matches_scalar(self, start, step, kind, anchors):
        configs = ALL_CONFIGS[start::step]
        ai = np.array([a for a, _ in anchors], dtype=np.int64)
        aj = np.array([b for _, b in anchors], dtype=np.int64)
        fast = conflict_free_chunk(configs, kind, ai, aj, vectorized=True)
        slow = conflict_free_chunk(configs, kind, ai, aj, vectorized=False)
        assert fast.dtype == slow.dtype == np.dtype(bool)
        assert (fast == slow).all()

    @pytest.mark.parametrize("kind", CHUNK_KINDS)
    def test_forbid_policy_error_parity(self, kind):
        """Both paths raise the same ConflictError for the same first
        failure (config-major order)."""
        rng = np.random.default_rng(7)
        configs = ALL_CONFIGS[::9]
        ai = rng.integers(0, 64, size=32)
        aj = rng.integers(0, 64, size=32)
        messages = []
        for vectorized in (True, False):
            try:
                conflict_free_chunk(
                    configs, kind, ai, aj, policy="forbid",
                    vectorized=vectorized,
                )
                messages.append(None)
            except ConflictError as err:
                messages.append(str(err))
        assert messages[0] == messages[1]
        # the sampled chunk must actually exercise the raising branch for
        # at least one kind (column accesses conflict under most schemes)
        if kind is PatternKind.COLUMN:
            assert messages[0] is not None

    def test_forbid_all_clean_returns_mask(self):
        cfg = PolyMemConfig(64 * KB, p=2, q=4, scheme=Scheme.ReRo)
        out = conflict_free_chunk(
            [cfg],
            PatternKind.RECTANGLE,
            np.array([0, 2]),
            np.array([0, 4]),
            policy="forbid",
        )
        assert out.all()

    def test_unknown_policy_rejected(self):
        cfg = PolyMemConfig(64 * KB, p=2, q=4, scheme=Scheme.ReRo)
        with pytest.raises(ValueError, match="policy"):
            conflict_free_chunk(
                [cfg], PatternKind.ROW, np.array([0]), np.array([0]),
                policy="maybe",
            )


class TestValidatePointsBatch:
    @settings(max_examples=8, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=len(ALL_CONFIGS) - 1),
        step=st.integers(min_value=7, max_value=23),
        max_rows=st.sampled_from([8, 16]),
    )
    def test_payload_parity(self, start, step, max_rows):
        configs = ALL_CONFIGS[start::step]
        batch = validate_points_batch(configs, max_rows=max_rows)
        scalar = [validate_config(cfg, max_rows) for cfg in configs]
        assert [_payload_json(b) for b in batch] == [
            _payload_json(s) for s in scalar
        ]

    def test_misaligned_region_falls_back_bit_identical(self):
        """max_rows not divisible by p forces the scalar fallback — and
        the scalar cycle rejects the truncated fill rectangle, so the
        batch path must surface the identical error."""
        from repro.core.exceptions import PatternError

        configs = ALL_CONFIGS[:1]
        outcomes = []
        for run in (
            lambda: validate_points_batch(configs, max_rows=15),
            lambda: [validate_config(cfg, 15) for cfg in configs],
        ):
            try:
                outcomes.append(("ok", run()))
            except PatternError as err:
                outcomes.append(("error", str(err)))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == "error"

    def test_port_siblings_share_one_pass(self):
        """Read-port count only scales the report's read counter."""
        base = dict(p=2, q=4, scheme=Scheme.ReRo)
        cfgs = [
            PolyMemConfig(512 * KB, read_ports=r, **base) for r in (1, 2, 3)
        ]
        payloads = validate_points_batch(cfgs, max_rows=16)
        per_port = payloads[0]["reads"]
        assert [p["reads"] for p in payloads] == [
            per_port, 2 * per_port, 3 * per_port
        ]
        assert all(p["passed"] for p in payloads)


class TestEvaluateBatchParity:
    def test_full_space_payloads(self):
        device = PAPER_SPACE.device.name
        batch = evaluate_points_batch(ALL_CONFIGS, device=device)
        scalar = [evaluate_point(cfg, device=device) for cfg in ALL_CONFIGS]
        assert [_payload_json(b) for b in batch] == [
            _payload_json(s) for s in scalar
        ]

    def test_validated_payloads(self):
        device = PAPER_SPACE.device.name
        configs = ALL_CONFIGS[::11]
        batch = evaluate_points_batch(
            configs, validate=True, validate_rows=8, device=device
        )
        scalar = [
            evaluate_point(cfg, validate=True, validate_rows=8, device=device)
            for cfg in configs
        ]
        assert [_payload_json(b) for b in batch] == [
            _payload_json(s) for s in scalar
        ]


class TestExploreEquivalence:
    @pytest.fixture(scope="class")
    def scalar_result(self):
        return explore(batch=False)

    def test_fast_path_points_identical(self, scalar_result):
        assert _points_json(explore()) == _points_json(scalar_result)

    def test_sweep_path_points_identical(self, scalar_result):
        batched = explore(workers=1)
        assert _points_json(batched) == _points_json(scalar_result)
        assert batched.sweep.batched_points == len(batched.points)
        assert batched.sweep.batch_calls >= 1

    def test_fast_path_sweep_accounting(self):
        result = explore()
        assert result.sweep is not None
        assert result.sweep.n_cached == 0
        assert result.sweep.n_computed == len(result.points)
        assert result.sweep.batched_points == len(result.points)

    def test_payload_json_matches_scalar_sweep(self, scalar_result):
        """Cache keys and payloads — not just the points — are identical,
        so batched and scalar runs share cache entries."""
        assert (
            explore().sweep.payload_json()
            == explore(workers=1).sweep.payload_json()
            == scalar_result.sweep.payload_json()
        )

    def test_validated_small_space(self):
        space = DesignSpace(
            capacities_kb=(512,),
            lane_counts=(8,),
            read_ports=(1, 2),
            schemes=(Scheme.ReRo, Scheme.ReTr),
        )
        kwargs = dict(space=space, validate=True, validate_rows=8)
        assert _points_json(explore(**kwargs)) == _points_json(
            explore(batch=False, **kwargs)
        )

    @settings(max_examples=6, deadline=None)
    @given(
        capacities=st.sets(
            st.sampled_from([512, 1024, 2048]), min_size=1, max_size=2
        ),
        lanes=st.sets(st.sampled_from([8, 16]), min_size=1),
        ports=st.sets(st.sampled_from([1, 2, 3]), min_size=1, max_size=2),
        schemes=st.sets(st.sampled_from(list(Scheme)), min_size=1, max_size=3),
    )
    def test_arbitrary_spaces(self, capacities, lanes, ports, schemes):
        space = DesignSpace(
            capacities_kb=tuple(sorted(capacities)),
            lane_counts=tuple(sorted(lanes)),
            read_ports=tuple(sorted(ports)),
            schemes=tuple(sorted(schemes, key=lambda s: s.value)),
        )
        assert _points_json(explore(space=space)) == _points_json(
            explore(space=space, batch=False)
        )


class TestPruning:
    @pytest.fixture(scope="class")
    def full(self):
        return explore()

    @pytest.fixture(scope="class")
    def pruned(self):
        return explore(prune=True)

    def test_frontier_exact(self, full, pruned):
        assert _frontier_key(full) == _frontier_key(pruned)

    def test_points_are_subset(self, full, pruned):
        full_labels = {p.config.label() for p in full.points}
        pruned_labels = {p.config.label() for p in pruned.points}
        assert pruned_labels < full_labels

    def test_survivor_payloads_identical(self, full, pruned):
        by_label = {p.config.label(): p for p in full.points}
        for p in pruned.points:
            q = by_label[p.config.label()]
            assert (p.paper_mhz, p.model_mhz, p.logic_pct, p.lut_pct,
                    p.bram_pct) == (q.paper_mhz, q.model_mhz, q.logic_pct,
                                    q.lut_pct, q.bram_pct)

    def test_frontier_exact_scalar_path_too(self, full):
        assert _frontier_key(explore(prune=True, batch=False)) == _frontier_key(
            full
        )


class TestBatchTelemetry:
    def test_counters_emitted(self):
        from repro.telemetry import Telemetry, session

        with session(Telemetry(label="test")) as tel:
            explore(prune=True)
            snap = tel.snapshot()
        c = snap["metrics"]["counters"]
        assert c["dse.batch.candidates"] == len(ALL_CONFIGS)
        assert c["dse.batch.pruned"] > 0
        assert c["dse.batch.configs"] == (
            len(ALL_CONFIGS) - c["dse.batch.pruned"]
        )
        assert c["dse.batch.scalar_configs"] == 0
        assert c["dse.batch.passes"] == 1
