"""Integration: the §IV-A validation cycle across the DSE grid.

The paper validates *every* DSE design with the unique-value read/write
cycle.  Running all 90 full-size designs is minutes of work; this test
covers every (scheme x lanes x ports) combination at reduced capacity —
the capacity axis only changes bank depth, which the addressing tests
already cover exhaustively.
"""

import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.dse.space import LANE_GRIDS
from repro.maxpolymem import build_design, validate_design


@pytest.mark.parametrize("scheme", list(Scheme))
@pytest.mark.parametrize("lanes", [8, 16])
@pytest.mark.parametrize("ports", [1, 2])
def test_validation_cycle_grid(scheme, lanes, ports):
    p, q = LANE_GRIDS[lanes]
    cfg = PolyMemConfig(
        16 * KB, p=p, q=q, scheme=scheme, read_ports=ports
    )
    report = validate_design(build_design(cfg, clock_source="model"), max_rows=16)
    assert report.passed, report.mismatches


@pytest.mark.parametrize("ports", [3, 4])
def test_validation_cycle_many_ports(ports):
    cfg = PolyMemConfig(16 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=ports)
    report = validate_design(build_design(cfg, clock_source="model"), max_rows=8)
    assert report.passed, report.mismatches


def test_validation_cycle_full_512kb_design():
    """One paper-size design validated end to end (capped rows)."""
    cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.RoCo)
    design = build_design(cfg)  # paper clock: 194 MHz from Table IV
    assert design.dfe.clock_mhz == 194
    report = validate_design(design, max_rows=8)
    assert report.passed
