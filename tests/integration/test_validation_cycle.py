"""Integration: the §IV-A validation cycle across the DSE grid.

The paper validates *every* DSE design with the unique-value read/write
cycle.  Running all 90 full-size designs is minutes of work; this test
covers every (scheme x lanes x ports) combination at reduced capacity —
the capacity axis only changes bank depth, which the addressing tests
already cover exhaustively.

The grid runs through the :mod:`repro.exec` runtime (the same path
``python -m repro experiments --workers N`` uses), exercising the
process-pool fan-out and the result cache end to end.
"""

import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.dse.space import LANE_GRIDS
from repro.exec import ResultCache
from repro.maxpolymem import build_design, validate_configs, validate_design


def _grid_configs():
    return [
        PolyMemConfig(16 * KB, p=p, q=q, scheme=scheme, read_ports=ports)
        for scheme in Scheme
        for p, q in (LANE_GRIDS[8], LANE_GRIDS[16])
        for ports in (1, 2)
    ]


def test_validation_cycle_grid(tmp_path):
    """Every (scheme x lanes x ports) design validates; the grid runs on
    the repro.exec runtime with a process pool and a result cache."""
    configs = _grid_configs()
    cache = ResultCache(tmp_path / "cache")
    reports = validate_configs(
        configs, max_rows=16, workers=2, cache=cache
    )
    assert len(reports) == len(configs)
    for cfg, report in zip(configs, reports):
        assert report.config_label == cfg.label()
        assert report.passed, report.mismatches

    # warm cache: identical outcome without recomputing a single design
    again = validate_configs(configs, max_rows=16, workers=2, cache=cache)
    assert [r.config_label for r in again] == [r.config_label for r in reports]
    assert all(r.passed for r in again)
    assert cache.hits >= len(configs)


@pytest.mark.parametrize("ports", [3, 4])
def test_validation_cycle_many_ports(ports):
    cfg = PolyMemConfig(16 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=ports)
    report = validate_design(build_design(cfg, clock_source="model"), max_rows=8)
    assert report.passed, report.mismatches


def test_validation_cycle_full_512kb_design():
    """One paper-size design validated end to end (capped rows)."""
    cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.RoCo)
    design = build_design(cfg)  # paper clock: 194 MHz from Table IV
    assert design.dfe.clock_mhz == 194
    report = validate_design(design, max_rows=8)
    assert report.passed
