"""Fuzz: concurrent multi-port traffic against a reference model.

Random sequences of cycles, each issuing up to one write plus one read per
port (all concurrent), are executed on PolyMem and on a plain array with
read-before-write semantics; results and final state must agree exactly.
Also cross-checks the write_first collision policy against its own
reference semantics.
"""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import AccessPattern, PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import SCHEME_SPECS, Scheme


def random_request(rng, scheme, p, q, rows, cols):
    spec = SCHEME_SPECS[scheme]
    kinds = [
        e.kind
        for e in spec.supported
        if e.condition_holds(p, q) and e.anchor_constraint == "any"
    ]
    kind = kinds[rng.integers(len(kinds))]
    pat = AccessPattern(kind, p, q)
    h, w = pat.shape
    i = int(rng.integers(0, rows - h + 1))
    if kind is PatternKind.ANTI_DIAGONAL:
        j = int(rng.integers(w - 1, cols))
    else:
        j = int(rng.integers(0, cols - w + 1))
    return AccessRequest(kind, i, j)


@pytest.mark.parametrize("scheme", [Scheme.ReRo, Scheme.ReCo])
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("policy", ["read_first", "write_first"])
def test_concurrent_multiport_fuzz(scheme, seed, policy):
    rng = np.random.default_rng(seed)
    cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=scheme, read_ports=3)
    pm = PolyMem(cfg, collision_policy=policy)
    ref = np.zeros((cfg.rows, cfg.cols), dtype=np.uint64)
    pm.load(ref)

    for cycle in range(120):
        reads = []
        for port in range(3):
            if rng.random() < 0.7:
                reads.append(
                    (port, random_request(rng, scheme, 2, 4, cfg.rows, cfg.cols))
                )
        write = None
        w_vals = None
        if rng.random() < 0.8:
            w_req = random_request(rng, scheme, 2, 4, cfg.rows, cfg.cols)
            w_vals = rng.integers(0, 1 << 40, 8).astype(np.uint64)
            write = (w_req, w_vals)

        results = pm.step(reads=reads, write=write)

        # reference semantics
        expected = {}
        for port, req in reads:
            pat = AccessPattern(req.kind, 2, 4)
            ii, jj = pat.coordinates(req.i, req.j)
            vals = ref[ii, jj].copy()
            if policy == "write_first" and write is not None:
                w_pat = AccessPattern(write[0].kind, 2, 4)
                wi, wj = w_pat.coordinates(write[0].i, write[0].j)
                w_map = {c: k for k, c in enumerate(zip(wi.tolist(), wj.tolist()))}
                for lane, cell in enumerate(zip(ii.tolist(), jj.tolist())):
                    if cell in w_map:
                        vals[lane] = w_vals[w_map[cell]]
            expected[port] = vals
        if write is not None:
            w_pat = AccessPattern(write[0].kind, 2, 4)
            wi, wj = w_pat.coordinates(write[0].i, write[0].j)
            ref[wi, wj] = w_vals

        for port, req in reads:
            assert (results[port] == expected[port]).all(), (
                cycle,
                port,
                req,
            )
    assert (pm.dump() == ref).all()
    assert pm.banks.replicas_consistent()


def test_serialization_factor_basics():
    from repro.core.conflict import serialization_factor

    # conflict-free -> 1 cycle
    assert serialization_factor(Scheme.ReRo, PatternKind.ROW, 0, 0, 2, 4) == 1
    # a column under ReRo pins m_h, so only p banks serve pq lanes -> 4
    assert serialization_factor(Scheme.ReRo, PatternKind.COLUMN, 0, 0, 2, 4) == 4
    # a misaligned RoCo rectangle double-loads a single bank -> 2
    assert (
        serialization_factor(Scheme.RoCo, PatternKind.RECTANGLE, 1, 2, 2, 4) == 2
    )
    # a row under ReO hits one bank row: q banks x p lanes -> 2 cycles
    assert serialization_factor(Scheme.ReO, PatternKind.ROW, 0, 0, 2, 4) == 2
    # worst case: every lane on one bank (column under ReCo-transposed ReO?)
    assert serialization_factor(Scheme.ReO, PatternKind.COLUMN, 0, 0, 2, 4) == 4
