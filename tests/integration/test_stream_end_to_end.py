"""Integration: the complete §V STREAM experiment, end to end.

Covers the full-size (paper-scale) cycle-accurate Copy run once — the
170 x 512 arrays, the 14-cycle latency, the stage separation — and checks
the Fig. 10 headline numbers against the paper.
"""

import numpy as np
import pytest

from repro.hw.calibration import STREAM_COPY
from repro.stream_bench import COPY, StreamHarness


@pytest.fixture(scope="module")
def harness():
    return StreamHarness()


class TestPaperScaleCopy:
    def test_full_size_cycle_accurate_copy(self, harness):
        """The real thing: 10,880 parallel reads + writes through the
        dataflow design, verified word-for-word."""
        vectors = harness.max_vectors
        m = harness.run(COPY, vectors=vectors, runs=STREAM_COPY.runs)
        # exact cycle count: one parallel access per cycle + latency drain
        assert m.cycles_per_run == vectors + 14 + 2
        # bandwidth within 1% of the paper's measured 15,301 MB/s
        assert m.mbps == pytest.approx(STREAM_COPY.measured_mbps, rel=0.01)
        assert m.efficiency > 0.99

    def test_stage_ledger_accounts_everything(self, harness):
        host = harness.host
        stages = {k: v for k, v in host.stages.items() if v.total_ns}
        assert {"load", "copy", "offload"} <= set(stages)
        # the load stage moved 3 arrays of 680 KB each over PCIe
        assert stages["load"].payload_bytes >= 3 * 170 * 512 * 8
        # stage wall clocks are disjoint and sum to the host clock
        total = sum(v.total_ns for v in host.stages.values())
        assert total == pytest.approx(host.clock_ns)

    def test_copy_preserves_sources(self, harness):
        """After Copy, arrays A and B are untouched (fresh harness)."""
        h = StreamHarness()
        arrays = h.load_arrays(vectors=64)
        h.run_app(COPY, vectors=64)
        assert np.allclose(h.offload_array(0, 64), arrays["a"])
        assert np.allclose(h.offload_array(1, 64), arrays["b"])
        assert np.allclose(h.offload_array(2, 64), arrays["a"])


class TestPaperConstants:
    def test_reference_constants(self):
        assert STREAM_COPY.clock_mhz == 120
        assert STREAM_COPY.read_latency_cycles == 14
        assert STREAM_COPY.host_call_overhead_ns == 300
        assert STREAM_COPY.peak_mbps == 2 * 8 * 8 * 120
        assert STREAM_COPY.measured_mbps / STREAM_COPY.peak_mbps > 0.99

    def test_design_defaults_match_constants(self, harness):
        d = harness.design
        assert d.dfe.clock_mhz == STREAM_COPY.clock_mhz
        assert d.polymem.read_latency == STREAM_COPY.read_latency_cycles
        assert (
            d.dfe.board.pcie.call_overhead_ns
            == STREAM_COPY.host_call_overhead_ns
        )
        assert d.controller.band_rows == STREAM_COPY.max_array_rows
        assert d.config.cols == STREAM_COPY.array_cols
