"""Integration: STREAM arithmetic expressed in the MaxJ DSL matches the
stream_bench implementation element for element."""

import numpy as np
import pytest

from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import FLOAT64, KernelGraph, compile_graph
from repro.stream_bench import SCALE, SUM, TRIAD


def run_two_input(graph, xs, ys):
    mgr = Manager(graph.name)
    k = mgr.add_kernel(compile_graph(graph))
    names = list(graph.inputs)
    for name, vals in zip(names, (xs, ys)[: len(names)]):
        src = mgr.add_kernel(SourceKernel(f"src_{name}", vals))
        mgr.connect(src, "out", k, name)
    snk = mgr.add_kernel(SinkKernel("snk"))
    mgr.connect(k, next(iter(graph.outputs)), snk, "in")
    DFE(mgr, 120).run()
    return np.array(snk.collected)


@pytest.fixture
def vectors():
    rng = np.random.default_rng(11)
    return rng.uniform(1, 2, 64), rng.uniform(1, 2, 64)


def test_scale_graph_matches_app(vectors):
    b, _ = vectors
    q = 3.0
    g = KernelGraph("scale")
    xb = g.input("b", FLOAT64)
    g.output("a", g.constant(q, FLOAT64) * xb)
    got = run_two_input(g, list(b), None)
    want = SCALE.expected(None, b, None, q)
    assert np.allclose(got, want)


def test_sum_graph_matches_app(vectors):
    b, c = vectors
    g = KernelGraph("sum")
    xb = g.input("b", FLOAT64)
    xc = g.input("c", FLOAT64)
    g.output("a", xb + xc)
    got = run_two_input(g, list(b), list(c))
    assert np.allclose(got, SUM.expected(None, b, c, 3.0))


def test_triad_graph_matches_app(vectors):
    b, c = vectors
    q = 3.0
    g = KernelGraph("triad")
    xb = g.input("b", FLOAT64)
    xc = g.input("c", FLOAT64)
    g.output("a", xb + g.constant(q, FLOAT64) * xc)
    got = run_two_input(g, list(b), list(c))
    assert np.allclose(got, TRIAD.expected(None, b, c, q))


def test_triad_pipeline_depth_is_mul_plus_add():
    g = KernelGraph("triad")
    xb = g.input("b", FLOAT64)
    xc = g.input("c", FLOAT64)
    g.output("a", xb + g.constant(3.0, FLOAT64) * xc)
    assert g.pipeline_depth() == 3  # mul(2) + add(1)
