"""Integration: all four access paths agree bit-for-bit.

The same command sequence is executed through (1) the PolyMem batch fast
path, (2) the architectural step path, (3) the fused dataflow kernel, and
(4) the modular Fig. 3 pipeline; results and final memory contents must be
identical across all of them and match the NumPy reference.
"""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import AccessPattern, PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import SCHEME_SPECS, Scheme
from repro.maxpolymem import WriteCommand, build_design


def generate_ops(scheme, p, q, rows, cols, n_ops, seed):
    """A random sequence of supported (write, read) operations."""
    rng = np.random.default_rng(seed)
    spec = SCHEME_SPECS[scheme]
    kinds = [
        e.kind
        for e in spec.supported
        if e.condition_holds(p, q) and e.anchor_constraint == "any"
    ]
    ops = []
    for k in range(n_ops):
        kind = kinds[rng.integers(len(kinds))]
        pat = AccessPattern(kind, p, q)
        h, w = pat.shape
        i = int(rng.integers(0, rows - h + 1))
        if kind is PatternKind.ANTI_DIAGONAL:
            j = int(rng.integers(w - 1, cols))
        else:
            j = int(rng.integers(0, cols - w + 1))
        is_write = bool(rng.integers(2))
        vals = rng.integers(0, 1 << 40, p * q).astype(np.uint64) if is_write else None
        ops.append((kind, i, j, vals))
    return ops


def run_reference(cfg, ops):
    ref = np.zeros((cfg.rows, cfg.cols), dtype=np.uint64)
    reads = []
    for kind, i, j, vals in ops:
        pat = AccessPattern(kind, cfg.p, cfg.q)
        ii, jj = pat.coordinates(i, j)
        if vals is not None:
            ref[ii, jj] = vals
        else:
            reads.append(ref[ii, jj].copy())
    return ref, reads


def run_step_path(cfg, ops):
    pm = PolyMem(cfg)
    reads = []
    for kind, i, j, vals in ops:
        if vals is not None:
            pm.write(kind, i, j, vals)
        else:
            reads.append(pm.read(kind, i, j))
    return pm.dump(), reads


def run_design_path(cfg, ops, style):
    design = build_design(cfg, style=style, clock_source="model")
    host = design.host()
    out = design.dfe.manager.host_output("rd_out0")
    reads = []
    for kind, i, j, vals in ops:
        req = AccessRequest(kind, i, j)
        if vals is not None:
            host.write_stream("wr_cmd", [WriteCommand(req, vals)])
            host.run_kernel(max_cycles=1000)
        else:
            host.write_stream("rd_cmd0", [req])
            host.run_kernel(until=lambda: len(out) == 1, max_cycles=1000)
            reads.append(np.asarray(host.read_stream("rd_out0")[0]))
    memory = design.kernel.memory if style == "fused" else None
    dump = (
        memory.dump()
        if memory is not None
        else _dump_modular(design)
    )
    return dump, reads


def _dump_modular(design):
    """Reconstruct the logical contents from the modular banks kernel."""
    from repro.core.addressing import AddressingFunction
    from repro.core.schemes import flat_module_assignment

    cfg = design.config
    banks = design.modular.banks.banks
    ii, jj = np.mgrid[0 : cfg.rows, 0 : cfg.cols]
    bank_ids = flat_module_assignment(cfg.scheme, ii, jj, cfg.p, cfg.q)
    addrs = AddressingFunction(cfg.rows, cfg.cols, cfg.p, cfg.q)(ii, jj)
    return banks.read(0, bank_ids, addrs)


@pytest.mark.parametrize("scheme", [Scheme.ReRo, Scheme.ReCo, Scheme.ReTr])
@pytest.mark.parametrize("seed", [0, 1])
def test_all_paths_agree(scheme, seed):
    cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=scheme)
    ops = generate_ops(scheme, 2, 4, cfg.rows, cfg.cols, n_ops=20, seed=seed)
    ref_mem, ref_reads = run_reference(cfg, ops)
    for runner in (
        run_step_path,
        lambda c, o: run_design_path(c, o, "fused"),
        lambda c, o: run_design_path(c, o, "modular"),
    ):
        mem, reads = runner(cfg, ops)
        assert (mem == ref_mem).all()
        assert len(reads) == len(ref_reads)
        for got, want in zip(reads, ref_reads):
            assert (np.asarray(got) == want).all()


def test_batch_path_agrees_with_step_path():
    cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo)
    pm_step, pm_batch = PolyMem(cfg), PolyMem(cfg)
    rng = np.random.default_rng(3)
    anchors_i = rng.integers(0, cfg.rows - 2, 50)
    anchors_j = (rng.integers(0, cfg.cols // 4 - 1, 50)) * 4
    vals = rng.integers(0, 1 << 40, (50, 8)).astype(np.uint64)
    for k in range(50):
        pm_step.write(PatternKind.RECTANGLE, int(anchors_i[k]), int(anchors_j[k]), vals[k])
    # batch path needs non-overlapping writes for identical semantics; use
    # last-write-wins sequences only when they match: replay sequentially
    for k in range(50):
        pm_batch.write_batch(
            PatternKind.RECTANGLE,
            anchors_i[k : k + 1],
            anchors_j[k : k + 1],
            vals[k : k + 1],
        )
    assert (pm_step.dump() == pm_batch.dump()).all()
    out_step = np.stack(
        [pm_step.read(PatternKind.ROW, int(i), 0) for i in range(cfg.rows)]
    )
    out_batch = pm_batch.read_batch(
        PatternKind.ROW, np.arange(cfg.rows), np.zeros(cfg.rows, dtype=np.int64)
    )
    assert (out_step == out_batch).all()
