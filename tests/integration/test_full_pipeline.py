"""Capstone integration: the paper's whole flow in one test.

Walks the end-to-end story a user of this library follows:

1. profile the application trace and pick the best configuration (§III-A);
2. build that configuration as a dataflow design and validate it (§IV-A);
3. estimate its synthesis outcome and bandwidth (§IV);
4. execute the optimized schedule on the configured memory;
5. persist and reload the artifacts.
"""


from repro.core.config import KB, PolyMemConfig
from repro.dse import DesignSpace, explore
from repro.hw.synthesis import default_model
from repro.maxpolymem import build_design, validate_design
from repro.schedule import (
    column_trace,
    customize,
    execute_schedule,
)
from repro.util import load_schedule, save_schedule


def test_full_pipeline(tmp_path):
    # 1) the application reads columns -> §III-A picks a column scheme
    trace = column_trace(2, 32)
    customization = customize(trace, lane_grids=[(2, 4)])
    best = customization.best
    assert best.efficiency == 1.0
    assert best.scheme.value in ("ReCo", "RoCo")

    # 2) realize the chosen scheme as a design and validate it
    cfg = PolyMemConfig(
        64 * KB, p=best.p, q=best.q, scheme=best.scheme, read_ports=2
    )
    design = build_design(cfg, clock_source="model")
    report = validate_design(design, max_rows=16)
    assert report.passed, report.mismatches

    # 3) synthesis estimate + bandwidth for the chosen design
    est = default_model().estimate(cfg)
    assert est.feasible
    read_gbps = est.fmax_mhz * 1e6 * cfg.lanes * 8 * cfg.read_ports / 1e9
    assert read_gbps > 10  # a small PolyMem still delivers >10 GB/s

    # 4) run the optimized schedule against the configured memory
    execution = execute_schedule(trace, best)
    assert execution.covered and execution.data_correct
    assert execution.matches_prediction

    # 5) artifacts round-trip
    path = save_schedule(best, tmp_path / "schedule.json")
    reloaded = load_schedule(path)
    assert execute_schedule(trace, reloaded).covered

    # and the DSE around it persists too
    from repro.util import load_dse_result, save_dse_result

    space = DesignSpace(
        capacities_kb=(512,), lane_counts=(8,), read_ports=(1, 2)
    )
    sweep = explore(space)
    p2 = save_dse_result(sweep, tmp_path / "sweep.json")
    assert load_dse_result(p2).peak_read_gbps == sweep.peak_read_gbps
