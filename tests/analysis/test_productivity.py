"""Tests for the Table II productivity analysis."""

from pathlib import Path


from repro.analysis import (
    PAPER_TABLE_II,
    count_loc,
    productivity_table,
    render_table,
)


class TestPaperTable:
    def test_seven_rows(self):
        assert len(PAPER_TABLE_II) == 7

    def test_paper_totals(self):
        """Table II totals: 27 days, 1935 LOC."""
        assert sum(r.paper_effort_days for r in PAPER_TABLE_II) == 27
        assert sum(r.paper_loc for r in PAPER_TABLE_II) == 1935

    def test_shuffle_is_the_big_effort(self):
        by_days = max(PAPER_TABLE_II, key=lambda r: r.paper_effort_days)
        assert by_days.module == "Shuffle"

    def test_read_ports_is_the_small_effort(self):
        by_days = min(PAPER_TABLE_II, key=lambda r: r.paper_effort_days)
        assert by_days.module == "Multiple Read Ports"


class TestCountLoc:
    def test_counts_code_not_comments(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            '"""docstring\nmore\n"""\n'
            "# comment\n"
            "\n"
            "x = 1\n"
            "def f():\n"
            '    """doc"""\n'
            "    return x  # inline comment\n"
        )
        assert count_loc(f) == 3  # x=1, def, return

    def test_multiline_statement_counts_lines(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("x = [\n    1,\n    2,\n]\n")
        assert count_loc(f) == 4

    def test_empty_file(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("")
        assert count_loc(f) == 0


class TestProductivityTable:
    def test_all_mapped_files_exist(self):
        import repro

        root = Path(repro.__file__).parent
        for row in PAPER_TABLE_II:
            for f in row.our_files:
                assert (root / f).exists(), f

    def test_measured_loc_positive(self):
        rows = productivity_table()
        measured = [r for r in rows if r.our_files]
        assert all(r.our_loc > 0 for r in measured)

    def test_render(self):
        text = render_table(productivity_table())
        assert "Shuffle" in text and "TOTAL" in text
        assert "1935" in text
