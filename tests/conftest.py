"""Shared fixtures for the PolyMem test suite."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path_factory, monkeypatch):
    """Point the repro.exec default cache at a per-session tmp dir, so CLI
    invocations under test never touch the user's real ~/.cache."""
    monkeypatch.setenv(
        "REPRO_CACHE_DIR",
        str(tmp_path_factory.getbasetemp() / "repro-exec-cache"),
    )

#: lane grids covering the paper's DSE (2x4, 2x8) plus edge geometries
LANE_GRIDS = [(2, 4), (2, 8), (4, 2), (2, 2), (4, 4)]

#: all five schemes in paper order
ALL_SCHEMES = list(Scheme)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_config():
    """A small ReRo PolyMem, quick enough for exhaustive checks."""
    return PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo)


@pytest.fixture
def small_polymem(small_config):
    return PolyMem(small_config)


@pytest.fixture
def loaded_polymem(small_polymem):
    """A small PolyMem pre-loaded with unique values (value == flat index)."""
    pm = small_polymem
    matrix = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
    pm.load(matrix)
    return pm, matrix


def make_polymem(scheme, p=2, q=4, capacity=4 * KB, read_ports=1):
    """Helper used across test modules."""
    cfg = PolyMemConfig(capacity, p=p, q=q, scheme=scheme, read_ports=read_ports)
    return PolyMem(cfg)
