"""Tests for schedule execution against a real PolyMem."""

import numpy as np
import pytest

from repro.core.exceptions import ScheduleError
from repro.core.schemes import Scheme
from repro.schedule import (
    block_trace,
    column_trace,
    customize,
    diagonal_trace,
    execute_schedule,
    memory_for_trace,
    random_trace,
    row_trace,
    schedule_trace,
)


class TestExecuteSchedule:
    @pytest.mark.parametrize(
        "trace,scheme",
        [
            (row_trace(4, 16), Scheme.ReRo),
            (column_trace(2, 16), Scheme.ReCo),
            (diagonal_trace(8), Scheme.ReRo),
            (block_trace(4, 8), Scheme.ReO),
        ],
        ids=["rows", "cols", "diag", "block"],
    )
    def test_regular_traces(self, trace, scheme):
        schedule = schedule_trace(trace, scheme, 2, 4)
        result = execute_schedule(trace, schedule)
        assert result.covered
        assert result.data_correct
        assert result.matches_prediction
        assert result.overfetch_ratio == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_irregular_traces_cover_with_overfetch(self, seed):
        trace = random_trace(12, 12, density=0.3, seed=seed)
        schedule = schedule_trace(trace, Scheme.ReRo, 2, 4)
        result = execute_schedule(trace, schedule)
        assert result.covered and result.data_correct
        assert result.matches_prediction
        assert result.overfetch_ratio >= 1.0

    def test_every_customize_winner_executes(self):
        trace = random_trace(10, 10, density=0.4, seed=7)
        res = customize(trace, lane_grids=[(2, 4)])
        for schedule in res.schedules:
            result = execute_schedule(trace, schedule)
            assert result.covered, schedule.scheme
            assert result.matches_prediction, schedule.scheme

    def test_trace_mismatch_rejected(self):
        t1, t2 = row_trace(2, 16), column_trace(2, 16)
        schedule = schedule_trace(t1, Scheme.ReRo, 2, 4)
        with pytest.raises(ScheduleError, match="built for"):
            execute_schedule(t2, schedule)

    def test_memory_for_trace_pads_region(self):
        trace = random_trace(5, 9, density=0.5, seed=1)
        schedule = schedule_trace(trace, Scheme.ReRo, 2, 4)
        pm, fill = memory_for_trace(trace, schedule)
        assert pm.rows % 2 == 0 and pm.cols % 4 == 0
        assert pm.rows >= 5 and pm.cols >= 9
        assert fill.shape == (pm.rows, pm.cols)

    def test_custom_fill(self):
        trace = row_trace(2, 16)
        schedule = schedule_trace(trace, Scheme.ReRo, 2, 4)
        pm, fill = memory_for_trace(
            trace, schedule, fill=np.full((2, 16), 9, dtype=np.uint64)
        )
        assert (pm.dump() == 9).all()
