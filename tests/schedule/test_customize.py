"""Tests for schedule metrics and configuration selection (§III-A)."""

import pytest

from repro.core.exceptions import ScheduleError
from repro.core.schemes import Scheme
from repro.schedule import (
    block_trace,
    column_trace,
    customize,
    diagonal_trace,
    random_trace,
    row_trace,
    schedule_trace,
    transpose_trace,
)


class TestScheduleMetrics:
    def test_perfect_row_schedule(self):
        s = schedule_trace(row_trace(4, 16), Scheme.ReRo, 2, 4)
        assert s.n_accesses == 8
        assert s.speedup == 8.0
        assert s.efficiency == 1.0

    def test_mismatched_scheme_lowers_efficiency(self):
        """Rows read through ReO (rectangles only) waste lanes."""
        good = schedule_trace(row_trace(2, 16), Scheme.ReRo, 2, 4)
        bad = schedule_trace(row_trace(2, 16), Scheme.ReO, 2, 4)
        assert good.efficiency >= bad.efficiency
        assert good.speedup >= bad.speedup

    def test_solver_choice(self):
        t = random_trace(8, 8, density=0.4, seed=1)
        ilp = schedule_trace(t, Scheme.ReRo, 2, 4, solver="ilp")
        greedy = schedule_trace(t, Scheme.ReRo, 2, 4, solver="greedy")
        assert ilp.n_accesses <= greedy.n_accesses
        assert greedy.solver == "greedy" and not greedy.proven_optimal
        with pytest.raises(ScheduleError):
            schedule_trace(t, Scheme.ReRo, 2, 4, solver="oracle")


class TestCustomize:
    def test_row_workload_prefers_row_capable_scheme(self):
        res = customize(row_trace(2, 32), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReRo, Scheme.RoCo, Scheme.ReO,
                                   Scheme.ReCo, Scheme.ReTr)
        # all schemes tile 2 full rows with rectangles equally well; a
        # single odd row separates them:
        res = customize(row_trace(1, 32), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReRo, Scheme.RoCo)
        assert res.best.efficiency == 1.0

    def test_column_workload(self):
        res = customize(column_trace(1, 32), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReCo, Scheme.RoCo)
        assert res.best.efficiency == 1.0

    def test_diagonal_workload(self):
        res = customize(diagonal_trace(8), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReRo, Scheme.ReCo)
        assert res.best.n_accesses == 1

    def test_block_workload_ties_resolved_by_metrics(self):
        res = customize(block_trace(4, 8), lane_grids=[(2, 4)])
        assert res.best.speedup == 8.0

    def test_larger_lane_grid_wins_on_speedup(self):
        res = customize(row_trace(2, 32), lane_grids=[(2, 4), (2, 8)])
        assert res.best.lanes == 16
        assert res.best.speedup == 16.0

    def test_by_scheme_filter(self):
        res = customize(block_trace(4, 8), lane_grids=[(2, 4)])
        assert all(s.scheme is Scheme.ReO for s in res.by_scheme(Scheme.ReO))

    def test_uncoverable_configs_skipped(self):
        # no 16-element pattern fits a 4x4 region; the 2x4 grid still works
        res = customize(block_trace(4, 4), lane_grids=[(2, 4), (2, 8)])
        assert res.schedules
        assert all(s.lanes == 8 for s in res.schedules)

    def test_transposed_rectangle_rescues_tall_regions(self):
        """An 8x4 block is unreachable for 2x8 rect/row/col patterns, but
        ReTr's 8x2 transposed rectangle tiles it in 2 accesses."""
        res = customize(block_trace(8, 4), lane_grids=[(2, 8)])
        assert [s.scheme for s in res.schedules] == [Scheme.ReTr]
        assert res.best.n_accesses == 2 and res.best.efficiency == 1.0

    def test_nothing_fits_raises(self):
        with pytest.raises(ScheduleError):
            customize(block_trace(2, 2), lane_grids=[(2, 8)])

    def test_transpose_workload_retr_competitive(self):
        res = customize(transpose_trace(4, 8), lane_grids=[(2, 4)])
        retr = res.by_scheme(Scheme.ReTr)[0]
        assert retr.speedup == res.best.speedup
