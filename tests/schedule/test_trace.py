"""Tests for application trace factories."""

import pytest

from repro.core.exceptions import ScheduleError
from repro.schedule.trace import (
    ApplicationTrace,
    block_trace,
    column_trace,
    diagonal_trace,
    random_trace,
    row_trace,
    stencil_trace,
    transpose_trace,
)


class TestApplicationTrace:
    def test_empty_rejected(self):
        with pytest.raises(ScheduleError, match="no cells"):
            ApplicationTrace("t", frozenset(), 4, 4)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ScheduleError, match="outside"):
            ApplicationTrace("t", frozenset({(5, 0)}), 4, 4)

    def test_density_and_len(self):
        t = block_trace(2, 2)
        assert len(t) == 4 and t.density == 1.0

    def test_mask(self):
        t = row_trace(1, 4)
        mask = t.as_mask()
        assert mask.shape == (1, 4) and mask.all()


class TestFactories:
    def test_block(self):
        t = block_trace(3, 5, at=(2, 1))
        assert (2, 1) in t.cells and (4, 5) in t.cells
        assert len(t) == 15

    def test_rows(self):
        t = row_trace(2, 8)
        assert len(t) == 16 and t.rows == 2 and t.cols == 8

    def test_columns(self):
        t = column_trace(3, 8)
        assert len(t) == 24 and t.rows == 8 and t.cols == 3

    def test_diagonal(self):
        t = diagonal_trace(8)
        assert (0, 0) in t.cells and (7, 7) in t.cells
        assert len(t) == 8

    def test_anti_diagonal(self):
        t = diagonal_trace(8, anti=True)
        assert (0, 7) in t.cells and (7, 0) in t.cells

    def test_multi_diagonal(self):
        t = diagonal_trace(4, count=3)
        assert len(t) == 12 or len(t) < 12  # overlaps allowed
        assert (2, 0) in t.cells  # third diagonal start

    def test_transpose(self):
        t = transpose_trace(4, 6)
        assert len(t) == 24

    def test_stencil(self):
        t = stencil_trace(6, 6)
        assert len(t) == 36

    def test_random_deterministic(self):
        t1 = random_trace(10, 10, density=0.3, seed=5)
        t2 = random_trace(10, 10, density=0.3, seed=5)
        assert t1.cells == t2.cells
        assert 0 < t1.density < 1

    def test_random_never_empty(self):
        t = random_trace(10, 10, density=0.0001, seed=1)
        assert len(t) >= 1

    def test_random_density_validation(self):
        with pytest.raises(ScheduleError):
            random_trace(4, 4, density=0)
