"""Tests for the set-cover formulation, greedy baseline and exact solver."""

import pytest

from repro.core.exceptions import ScheduleError
from repro.core.schemes import Scheme
from repro.schedule import (
    block_trace,
    build_cover_problem,
    column_trace,
    diagonal_trace,
    greedy_cover,
    random_trace,
    row_trace,
    solve_cover,
)


class TestCoverProblem:
    def test_candidates_respect_alignment(self):
        # RoCo rectangles only at i-aligned or j-aligned anchors
        t = block_trace(4, 8)
        prob = build_cover_problem(t, Scheme.RoCo, 2, 4)
        from repro.core.conflict import is_conflict_free

        for cand in prob.candidates:
            assert is_conflict_free(
                Scheme.RoCo, cand.kind, cand.i, cand.j, 2, 4
            ), cand

    def test_candidates_fit_region(self):
        t = row_trace(2, 16)
        prob = build_cover_problem(t, Scheme.ReRo, 2, 4)
        for cand in prob.candidates:
            from repro.core.patterns import AccessPattern

            assert AccessPattern(cand.kind, 2, 4).fits(
                cand.i, cand.j, t.rows, t.cols
            )

    def test_masks_nonzero(self):
        t = block_trace(4, 8)
        prob = build_cover_problem(t, Scheme.ReO, 2, 4)
        assert all(m for m in prob.masks)

    def test_coverable(self):
        t = block_trace(4, 8)
        assert build_cover_problem(t, Scheme.ReO, 2, 4).coverable()

    def test_not_coverable_region_too_small(self):
        # a 2x4 block cannot host any 8-element pattern of a 2x8 grid
        t = block_trace(2, 4)
        with pytest.raises(ScheduleError):
            build_cover_problem(t, Scheme.ReO, 2, 8)

    def test_covered_cells_reporting(self):
        t = block_trace(2, 4)
        prob = build_cover_problem(t, Scheme.ReO, 2, 4)
        k = prob.masks.index(prob.universe)
        assert prob.covered_cells(prob.candidates[k]) == t.cells


class TestGreedy:
    def test_tiling_close_to_optimal(self):
        """Greedy may over-cover on ties (it picks an overlapping rectangle
        on this instance — the classic ln(n) gap); the exact solver finds
        the 4-access tiling."""
        t = block_trace(4, 8)
        prob = build_cover_problem(t, Scheme.ReO, 2, 4)
        chosen = greedy_cover(prob)
        assert 4 <= len(chosen) <= 5
        assert solve_cover(prob).n_accesses == 4  # 32 cells / 8 lanes

    def test_produces_valid_cover(self):
        t = random_trace(10, 10, density=0.4, seed=9)
        prob = build_cover_problem(t, Scheme.ReRo, 2, 4)
        chosen = greedy_cover(prob)
        covered = 0
        for k in chosen:
            covered |= prob.masks[k]
        assert covered == prob.universe


class TestExactSolver:
    def test_matches_known_optimum(self):
        t = row_trace(4, 16)
        prob = build_cover_problem(t, Scheme.ReRo, 2, 4)
        sol = solve_cover(prob)
        assert sol.n_accesses == 8
        assert sol.proven_optimal

    def test_never_worse_than_greedy(self):
        for seed in range(5):
            t = random_trace(10, 10, density=0.35, seed=seed)
            prob = build_cover_problem(t, Scheme.ReRo, 2, 4)
            g = len(greedy_cover(prob))
            s = solve_cover(prob)
            assert s.n_accesses <= g

    def test_solution_is_valid_cover(self):
        t = random_trace(8, 12, density=0.5, seed=2)
        prob = build_cover_problem(t, Scheme.ReCo, 2, 4)
        sol = solve_cover(prob)
        covered = 0
        for k in sol.chosen:
            covered |= prob.masks[k]
        assert covered == prob.universe

    def test_node_budget_degrades_gracefully(self):
        t = random_trace(12, 12, density=0.5, seed=4)
        prob = build_cover_problem(t, Scheme.RoCo, 2, 4)
        sol = solve_cover(prob, node_budget=10)
        assert not sol.proven_optimal
        covered = 0
        for k in sol.chosen:
            covered |= prob.masks[k]
        assert covered == prob.universe  # incumbent is still a valid cover

    def test_diagonal_trace_single_access(self):
        t = diagonal_trace(8)
        prob = build_cover_problem(t, Scheme.ReRo, 2, 4)
        sol = solve_cover(prob)
        assert sol.n_accesses == 1

    def test_column_trace_on_reco(self):
        t = column_trace(1, 16)
        prob = build_cover_problem(t, Scheme.ReCo, 2, 4)
        assert solve_cover(prob).n_accesses == 2

    def test_nodes_counted(self):
        t = block_trace(4, 8)
        prob = build_cover_problem(t, Scheme.ReO, 2, 4)
        assert solve_cover(prob).nodes_explored > 0
