"""The trace factories are program-derived: same cells, same schedules."""

import numpy as np
import pytest

from repro.core.exceptions import ScheduleError
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.program import AccessProgram
from repro.schedule import (
    block_trace,
    column_trace,
    customize,
    diagonal_trace,
    random_trace,
    row_trace,
    stencil_trace,
    transpose_trace,
)
from repro.schedule.executor import execute_schedule
from repro.schedule.trace import kernel_trace, program_trace


def _reference_cells(name, *args):
    """The pre-refactor hand-written cell sets, verbatim."""
    if name == "block":
        rows, cols, (i0, j0) = args
        return {(i0 + a, j0 + b) for a in range(rows) for b in range(cols)}
    if name == "rows":
        n_rows, length = args
        return {(i, j) for i in range(n_rows) for j in range(length)}
    if name == "columns":
        n_cols, length = args
        return {(i, j) for j in range(n_cols) for i in range(length)}
    if name == "full":
        rows, cols = args
        return {(i, j) for i in range(rows) for j in range(cols)}
    if name == "diagonals":
        n, count, anti = args
        cells = set()
        for d in range(count):
            for k in range(n):
                cells.add((k + d, n - 1 - k) if anti else (k + d, k))
        return cells
    raise AssertionError(name)


class TestFactoriesMatchHandWrittenCells:
    def test_block(self):
        t = block_trace(4, 6, at=(2, 1))
        assert t.cells == _reference_cells("block", 4, 6, (2, 1))
        assert (t.rows, t.cols) == (6, 7)

    def test_rows(self):
        t = row_trace(3, 16)
        assert t.cells == _reference_cells("rows", 3, 16)
        assert (t.rows, t.cols) == (3, 16)

    def test_columns(self):
        t = column_trace(5, 12)
        assert t.cells == _reference_cells("columns", 5, 12)
        assert (t.rows, t.cols) == (12, 5)

    def test_stencil_and_transpose(self):
        assert stencil_trace(6, 10).cells == _reference_cells("full", 6, 10)
        assert transpose_trace(7, 3).cells == _reference_cells("full", 7, 3)

    @pytest.mark.parametrize("anti", [False, True])
    def test_diagonals(self, anti):
        t = diagonal_trace(8, count=3, anti=anti)
        assert t.cells == _reference_cells("diagonals", 8, 3, anti)
        assert (t.rows, t.cols) == (10, 8)

    def test_random_is_deterministic(self):
        a = random_trace(8, 8, density=0.3, seed=7)
        b = random_trace(8, 8, density=0.3, seed=7)
        assert a.cells == b.cells
        assert all(0 <= i < 8 and 0 <= j < 8 for i, j in a.cells)


class TestProgramTrace:
    def test_extent_defaults(self):
        prog = AccessProgram("two_tiles").read(
            PatternKind.RECTANGLE, np.array([0, 2]), np.array([0, 4])
        )
        t = program_trace(prog, 2, 4)
        assert (t.rows, t.cols) == (4, 8)
        assert len(t) == 16

    def test_empty_program_rejected(self):
        with pytest.raises(ScheduleError, match="no accesses"):
            program_trace(AccessProgram("empty"), 2, 4)

    def test_derived_traces_drive_customization(self):
        """Program-derived traces yield the same schemes the hand-written
        sets did (the pre-refactor customize() pins, re-run)."""
        res = customize(row_trace(1, 32), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReRo, Scheme.RoCo)
        assert res.best.efficiency == 1.0
        res = customize(column_trace(1, 32), lane_grids=[(2, 4)])
        assert res.best.scheme in (Scheme.ReCo, Scheme.RoCo)
        assert res.best.efficiency == 1.0

    def test_derived_schedule_executes_covered(self):
        trace = diagonal_trace(8, count=2)
        best = customize(trace, lane_grids=[(2, 4)]).best
        result = execute_schedule(trace, best)
        assert result.covered and result.data_correct
        assert result.matches_prediction


class TestKernelTrace:
    @pytest.mark.parametrize(
        "kernel", ["matmul", "stencil", "transpose", "reduce_rows"]
    )
    def test_real_lowerings_customize(self, kernel):
        t = kernel_trace(kernel)
        assert len(t) > 0
        res = customize(t, lane_grids=[(2, 4)])
        assert res.best.efficiency > 0

    def test_matmul_trace_reads_rows_and_columns(self):
        t = kernel_trace("matmul")
        # the demo streams an 8x8 A and an 8x8 B from one 16x8 memory
        assert (t.rows, t.cols) == (16, 8)
        assert len(t) == 128

    def test_reduce_rows_trace_matches_row_factory(self):
        assert kernel_trace("reduce_rows").cells == row_trace(8, 8).cells
