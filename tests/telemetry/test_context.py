"""Tests for the global telemetry session context."""

import pytest

from repro.telemetry import Telemetry, activate, active, deactivate, session
from repro.telemetry.context import SNAPSHOT_FORMAT, _NULL_SPAN


@pytest.fixture(autouse=True)
def no_leaked_session():
    deactivate()
    yield
    deactivate()


class TestContext:
    def test_inactive_by_default(self):
        assert active() is None

    def test_activate_and_deactivate(self):
        tel = Telemetry()
        assert activate(tel) is tel
        assert active() is tel
        deactivate()
        assert active() is None

    def test_session_restores_previous(self):
        outer = Telemetry(label="outer")
        with session(outer):
            assert active() is outer
            with session(Telemetry(label="inner")) as inner:
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with session():
                raise RuntimeError("boom")
        assert active() is None

    def test_session_builds_fresh_telemetry(self):
        with session(tracing=True, label="t") as tel:
            assert tel.tracer is not None
            assert tel.label == "t"


class TestTelemetry:
    def test_span_without_tracer_is_null(self):
        tel = Telemetry()
        assert tel.span("x") is _NULL_SPAN
        with tel.span("x"):
            pass  # must be a usable no-op context

    def test_span_with_tracer_records(self):
        tel = Telemetry(tracing=True)
        with tel.span("x"):
            pass
        assert tel.tracer.events[0]["name"] == "x"

    def test_snapshot_shape(self):
        tel = Telemetry(label="run")
        tel.metrics.counter("a").inc()
        snap = tel.snapshot()
        assert snap["format"] == SNAPSHOT_FORMAT
        assert snap["label"] == "run"
        assert snap["metrics"]["counters"] == {"a": 1}
        assert "trace_events" not in snap

    def test_snapshot_counts_trace_events(self):
        tel = Telemetry(tracing=True)
        tel.tracer.instant("m")
        assert tel.snapshot()["trace_events"] == 1
