"""Tests for the workload x scheme x backend scorecard."""

import json

from repro.telemetry.context import SNAPSHOT_FORMAT
from repro.telemetry.ledger import Ledger, LedgerEntry
from repro.telemetry.scorecard import (
    SCORECARD_FORMAT,
    build_scorecard,
    render_json,
    render_markdown,
)


def entry(
    bench,
    workload=None,
    scheme=None,
    backend="vectis",
    gates=(),
    results=(),
    telemetry=None,
    sha="c0ffee" * 6 + "c0ff",
    ts=1.0,
):
    params = {}
    if workload:
        params["workload"] = workload
    if scheme:
        params["scheme"] = scheme
    return LedgerEntry(
        bench=bench,
        ts=ts,
        params=params,
        provenance={"backend": backend, "git": {"sha": sha, "dirty": False}},
        gates=list(gates),
        results=list(results),
        telemetry=telemetry,
    )


def gate(name="sim.batched_vs_scalar", value=3.0, ok=True):
    return {"name": name, "value": value, "op": ">=", "threshold": 2.0, "ok": ok}


def bandwidth_snapshot(achieved, peak):
    return {
        "format": SNAPSHOT_FORMAT,
        "metrics": {
            "counters": {},
            "gauges": {
                "stream.achieved_mbps": {"value": achieved},
                "stream.peak_mbps": {"value": peak},
            },
            "histograms": {},
        },
    }


class TestBuildScorecard:
    def test_one_cell_per_bench_newest_entry(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(entry("b1", "stream.copy", "batched", gates=[gate(value=2.5)]))
        ledger.append(entry("b1", "stream.copy", "batched", gates=[gate(value=4.0)]))
        ledger.append(entry("b2", "table3.sweep", "exec", backend="dram"))
        card = build_scorecard(ledger)
        assert card["format"] == SCORECARD_FORMAT
        assert len(card["cells"]) == 2
        c1 = next(c for c in card["cells"] if c["workload"] == "stream.copy")
        assert (c1["scheme"], c1["backend"]) == ("batched", "vectis")
        assert (c1["metric"], c1["value"]) == ("sim.batched_vs_scalar", 4.0)
        assert c1["ok"] is True and c1["gates"] == 1

    def test_cell_value_preference_order(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        # telemetry-derived achieved-vs-peak beats gate values
        ledger.append(
            entry(
                "with_tel",
                gates=[gate()],
                telemetry=bandwidth_snapshot(7680.0, 15360.0),
            )
        )
        # gate value beats results
        ledger.append(
            entry(
                "with_gate",
                gates=[gate(value=2.5)],
                results=[{"quantity": "q", "measured": 9.0}],
            )
        )
        # results are the last resort
        ledger.append(
            entry("with_result", results=[{"quantity": "q", "measured": 9.0}])
        )
        ledger.append(entry("bare"))
        cells = {c["workload"]: c for c in build_scorecard(ledger)["cells"]}
        assert cells["with_tel"]["metric"] == "stream.achieved_vs_peak"
        assert cells["with_tel"]["value"] == 0.5
        assert cells["with_gate"]["value"] == 2.5
        assert cells["with_result"]["value"] == 9.0
        assert cells["bare"]["metric"] == "n/a" and cells["bare"]["value"] is None

    def test_dims_fall_back_to_bench_name(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(LedgerEntry(bench="plain"))
        (cell,) = build_scorecard(ledger)["cells"]
        assert (cell["workload"], cell["scheme"], cell["backend"]) == (
            "plain", "-", "-",
        )

    def test_accepts_path_string(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(entry("b", "w", "s"))
        assert len(build_scorecard(str(ledger.path))["cells"]) == 1


class TestRenderMarkdown:
    def test_matrix_layout(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(
            entry("b1", "stream.copy", "batched", backend="vectis",
                  gates=[gate(value=4.0)])
        )
        ledger.append(
            entry("b2", "stream.copy", "batched", backend="dram",
                  gates=[gate(value=1.0, ok=False)])
        )
        text = render_markdown(build_scorecard(ledger))
        header = text.splitlines()[2]
        assert header.startswith("| workload | scheme |")
        assert " dram " in header and " vectis " in header
        (row,) = [ln for ln in text.splitlines() if "stream.copy" in ln]
        assert "4" in row and "⚠" in row  # the failed dram cell is flagged
        assert "1/2 ok" in row
        assert "Built from commit `c0ffeec0ffee`" in text

    def test_percent_formatting_for_share_metrics(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(
            entry("b", "stream.copy", "batched",
                  telemetry=bandwidth_snapshot(7680.0, 15360.0))
        )
        assert "50.0%" in render_markdown(build_scorecard(ledger))

    def test_missing_cell_placeholder(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(entry("b1", "w1", "s", backend="vectis", gates=[gate()]))
        ledger.append(entry("b2", "w2", "s", backend="dram", gates=[gate()]))
        text = render_markdown(build_scorecard(ledger))
        assert "·" in text  # each row misses the other row's backend

    def test_empty_ledger(self, tmp_path):
        text = render_markdown(build_scorecard(Ledger(tmp_path / "l.jsonl")))
        assert "no runs yet" in text


class TestRenderJson:
    def test_round_trips(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(entry("b", "w", "s", gates=[gate()]))
        doc = json.loads(render_json(build_scorecard(ledger)))
        assert doc["format"] == SCORECARD_FORMAT
        assert doc["cells"][0]["workload"] == "w"
