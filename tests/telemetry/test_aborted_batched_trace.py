"""Aborted-span recovery when an exception escapes mid-chunk.

The batched engine opens a ``segment.batched`` span before running a
chunk's vectorized sub-activities.  When one of them raises, the span is
still open as the exception unwinds: the simulator's ``kernel.run``
wrapper closes it (flagged aborted) on the way out, and export closes
whatever else dangles.  The trace written after such a crash must still
be valid Perfetto JSON — the post-mortem trace is exactly the one that
matters.
"""

import json

import pytest

from repro.maxeler import Manager, Simulator, SinkKernel, SourceKernel
from repro.telemetry import deactivate, session


class ExplodingSink(SinkKernel):
    """A sink whose vectorized absorb dies partway through a chunk —
    after the producer's sub-activity has already pushed its elements."""

    def _absorb(self, n: int) -> None:
        raise RuntimeError("device fault mid-chunk")


def exploding_pipeline(n=64):
    mgr = Manager("abort")
    src = mgr.add_kernel(SourceKernel("src", range(n)))
    snk = mgr.add_kernel(ExplodingSink("snk"))
    mgr.connect(src, "out", snk, "in")
    return mgr


@pytest.fixture(autouse=True)
def clean_session():
    deactivate()
    yield
    deactivate()


class TestAbortedBatchedSpans:
    def test_exception_mid_chunk_yields_valid_perfetto_json(self, tmp_path):
        with session(tracing=True) as tel:
            sim = Simulator(exploding_pipeline())
            with pytest.raises(RuntimeError, match="device fault"):
                sim.run(engine="batched")
            tracer = tel.tracer
            # the batched segment was open when the op died; run() closed
            # it on the way out, leaving only kernel.run dangling
            assert tracer.open_spans == 1
            path = tmp_path / "trace.json"
            tracer.save(path)

        doc = json.loads(path.read_text())  # must parse: valid JSON
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["segment.batched"]["args"]["aborted"] is True
        assert spans["kernel.run"]["args"]["aborted"] is True
        # export drained the stack: nothing dangles afterwards
        assert tracer.open_spans == 0
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"wall time", "sim time"}

    def test_aborted_spans_nest_consistently(self):
        with session(tracing=True) as tel:
            with pytest.raises(RuntimeError):
                Simulator(exploding_pipeline()).run(engine="batched")
            doc = tel.tracer.to_chrome_trace()
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        seg, run = spans["segment.batched"], spans["kernel.run"]
        assert seg["ts"] >= run["ts"]
        assert seg["ts"] + seg["dur"] <= run["ts"] + run["dur"]

    def test_tracer_recovers_for_subsequent_runs(self):
        with session(tracing=True) as tel:
            with pytest.raises(RuntimeError):
                Simulator(exploding_pipeline()).run(engine="batched")
            tel.tracer.close_open_spans()

            mgr = Manager("ok")
            src = mgr.add_kernel(SourceKernel("src", range(32)))
            snk = mgr.add_kernel(SinkKernel("snk"))
            mgr.connect(src, "out", snk, "in")
            result = Simulator(mgr).run(engine="batched")
            assert result.quiesced
            assert snk.collected == list(range(32))
            doc = tel.tracer.to_chrome_trace()

        runs = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "kernel.run"
        ]
        assert len(runs) == 2
        assert runs[0]["args"].get("aborted") is True
        assert "aborted" not in runs[1]["args"]
        json.dumps(doc)  # serializable end to end
