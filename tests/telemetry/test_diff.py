"""Tests for structured telemetry diffing."""

import json

import pytest

from repro.telemetry.context import SNAPSHOT_FORMAT
from repro.telemetry.diff import (
    diff_entries,
    diff_snapshots,
    load_diff_source,
    render_diff,
)
from repro.telemetry.ledger import Ledger, LedgerEntry


def snapshot(counters=None, gauges=None, histograms=None):
    return {
        "format": SNAPSHOT_FORMAT,
        "label": "t",
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


def rows_by_name(diff):
    return {r.name: r for r in diff.rows}


class TestCounterRows:
    def test_movement_beyond_noise_is_significant(self):
        diff = diff_snapshots(
            snapshot(counters={"c": 100}), snapshot(counters={"c": 120})
        )
        row = rows_by_name(diff)["c"]
        assert (row.a, row.b, row.delta) == (100, 120, 20)
        assert row.rel == pytest.approx(0.2)
        assert row.significant

    def test_jitter_below_noise_is_not(self):
        diff = diff_snapshots(
            snapshot(counters={"c": 100}), snapshot(counters={"c": 102})
        )
        assert not rows_by_name(diff)["c"].significant
        assert diff.significant == []

    def test_one_sided_presence_is_structural(self):
        diff = diff_snapshots(
            snapshot(counters={"only_a": 5}), snapshot(counters={"only_b": 7})
        )
        rows = rows_by_name(diff)
        assert rows["only_a"].significant and rows["only_a"].b is None
        assert rows["only_b"].significant and rows["only_b"].a is None

    def test_appearing_from_zero_is_significant(self):
        diff = diff_snapshots(
            snapshot(counters={"c": 0}), snapshot(counters={"c": 3})
        )
        row = rows_by_name(diff)["c"]
        assert row.significant and row.rel is None

    def test_abs_threshold_filters_small_deltas(self):
        diff = diff_snapshots(
            snapshot(counters={"c": 2}),
            snapshot(counters={"c": 4}),  # +100% but only +2
            abs_threshold=10.0,
        )
        assert not rows_by_name(diff)["c"].significant


class TestGaugeAndHistogramRows:
    def test_gauge_last_values_compared(self):
        diff = diff_snapshots(
            snapshot(gauges={"depth": {"value": 4, "min": 0, "max": 8}}),
            snapshot(gauges={"depth": {"value": 8, "min": 0, "max": 8}}),
        )
        row = rows_by_name(diff)["depth"]
        assert (row.a, row.b) == (4, 8) and row.significant

    def test_percentiles_from_bucket_cdf(self):
        a = snapshot(
            histograms={
                "h": {
                    "count": 100,
                    "mean": 5.0,
                    "buckets": {"4": 90, "8": 9, "1024": 1},
                }
            }
        )
        b = snapshot(
            histograms={
                "h": {
                    "count": 100,
                    "mean": 10.0,
                    "buckets": {"8": 90, "16": 9, "2048": 1},
                }
            }
        )
        rows = rows_by_name(diff_snapshots(a, b))
        assert (rows["h.p50"].a, rows["h.p50"].b) == (4.0, 8.0)
        assert (rows["h.p90"].a, rows["h.p90"].b) == (4.0, 8.0)
        assert (rows["h.p99"].a, rows["h.p99"].b) == (8.0, 16.0)
        assert rows["h.p50"].significant
        assert rows["h.count"].delta == 0

    def test_empty_histograms_skip_percentiles(self):
        diff = diff_snapshots(
            snapshot(histograms={"h": {"count": 0, "mean": 0, "buckets": {}}}),
            snapshot(histograms={"h": {"count": 0, "mean": 0, "buckets": {}}}),
        )
        assert not any(".p" in r.name for r in diff.rows)


class TestDerivedRows:
    def test_derived_metric_deltas(self):
        a = snapshot(
            counters={"sim.cycles.scalar": 50, "sim.cycles.batched": 50,
                      "sim.stall_cycles": 10}
        )
        b = snapshot(
            counters={"sim.cycles.scalar": 10, "sim.cycles.batched": 90,
                      "sim.stall_cycles": 10}
        )
        rows = rows_by_name(diff_snapshots(a, b))
        row = rows["sim.scalar_fallback_share"]
        assert row.kind == "derived"
        assert (row.a, row.b) == (0.5, 0.1) and row.significant


class TestDiffEntries:
    def entry(self, bench, sha, gate_value, timings, telemetry=None):
        return LedgerEntry(
            bench=bench,
            provenance={"git": {"sha": sha, "dirty": False}},
            gates=[{"name": "g", "value": gate_value, "op": ">=",
                    "threshold": 1.0, "ok": True}],
            timings=timings,
            telemetry=telemetry,
        )

    def test_gates_and_timings_lead_the_rows(self):
        a = self.entry("b", "a" * 40, 2.0, {"wall_s": 1.0})
        b = self.entry("b", "b" * 40, 3.0, {"wall_s": 2.0})
        diff = diff_entries(a, b)
        assert [r.kind for r in diff.rows] == ["gate", "timing"]
        rows = rows_by_name(diff)
        assert rows["g"].rel == pytest.approx(0.5)
        assert rows["wall_s"].significant
        assert diff.labels[0].startswith("b@aaaa")
        assert len(diff.labels[0]) <= 32

    def test_snapshot_rows_included_when_both_have_telemetry(self):
        a = self.entry("b", None, 2.0, {}, telemetry=snapshot(counters={"c": 1}))
        b = self.entry("b", None, 2.0, {}, telemetry=snapshot(counters={"c": 9}))
        diff = diff_entries(a, b)
        kinds = {r.kind for r in diff.rows}
        assert kinds == {"gate", "counter"}
        assert rows_by_name(diff)["c"].significant


class TestLoadDiffSource:
    def make_ledger(self, tmp_path, name="ledger.jsonl"):
        ledger = Ledger(tmp_path / name)
        for i, bench in enumerate(["a", "b", "a"]):
            ledger.append(LedgerEntry(bench=bench, ts=float(i)))
        return ledger

    def test_bare_ledger_gives_newest(self, tmp_path):
        ledger = self.make_ledger(tmp_path)
        entry = load_diff_source(str(ledger.path))
        assert (entry.bench, entry.ts) == ("a", 2.0)

    def test_index_selectors(self, tmp_path):
        ledger = self.make_ledger(tmp_path)
        assert load_diff_source(f"{ledger.path}#0").ts == 0.0
        assert load_diff_source(f"{ledger.path}#-2").ts == 1.0

    def test_bench_selector_gives_newest_of_bench(self, tmp_path):
        ledger = self.make_ledger(tmp_path)
        assert load_diff_source(f"{ledger.path}#b").ts == 1.0
        with pytest.raises(ValueError, match="no entries for bench"):
            load_diff_source(f"{ledger.path}#zzz")

    def test_index_out_of_range(self, tmp_path):
        ledger = self.make_ledger(tmp_path)
        with pytest.raises(ValueError, match="out of range"):
            load_diff_source(f"{ledger.path}#7")

    def test_ledger_sniffed_without_jsonl_suffix(self, tmp_path):
        path = tmp_path / "runs.log"
        path.write_text(LedgerEntry(bench="x").to_json() + "\n")
        assert load_diff_source(str(path)).bench == "x"

    def test_snapshot_file(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot(counters={"c": 1})))
        doc = load_diff_source(str(path))
        assert doc["metrics"]["counters"] == {"c": 1}

    def test_selector_on_snapshot_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot()))
        with pytest.raises(ValueError, match="selectors only apply"):
            load_diff_source(f"{path}#0")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_diff_source(str(tmp_path / "nope.jsonl"))


class TestRender:
    def test_significant_rows_only_by_default(self):
        diff = diff_snapshots(
            snapshot(counters={"moved": 100, "steady": 50}),
            snapshot(counters={"moved": 200, "steady": 50}),
        )
        text = render_diff(diff)
        assert "moved" in text and "steady" not in text
        assert "(+100.0%)" in text
        assert "1 significant of" in text

    def test_show_all_marks_significant(self):
        diff = diff_snapshots(
            snapshot(counters={"moved": 100, "steady": 50}),
            snapshot(counters={"moved": 200, "steady": 50}),
        )
        text = render_diff(diff, show_all=True)
        assert "steady" in text and " *" in text

    def test_quiet_diff_says_so(self):
        diff = diff_snapshots(
            snapshot(counters={"c": 100}), snapshot(counters={"c": 100})
        )
        assert "no movement beyond noise thresholds" in render_diff(diff)
