"""Tests for snapshot loading and the derived-value summary."""

import json

import pytest

from repro.telemetry import (
    derived_metrics,
    derived_values,
    load_snapshot,
    render_summary,
)
from repro.telemetry.context import SNAPSHOT_FORMAT


def snapshot(counters=None, gauges=None, histograms=None, **extra):
    return {
        "format": SNAPSHOT_FORMAT,
        "label": "test",
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
        **extra,
    }


class TestLoadSnapshot:
    def test_raw_snapshot_dict(self):
        snap = snapshot()
        assert load_snapshot(snap) is snap

    def test_exec_report_with_telemetry_meta(self):
        snap = snapshot()
        report = {
            "format": "repro.exec.report/1",
            "meta": {"telemetry": snap},
        }
        assert load_snapshot(report) is snap

    def test_from_file_path(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot(counters={"a": 1})))
        assert load_snapshot(path)["metrics"]["counters"] == {"a": 1}

    def test_rejects_unrelated_documents(self):
        with pytest.raises(ValueError):
            load_snapshot({"format": "something/else"})
        with pytest.raises(ValueError):
            load_snapshot({"meta": {}})


class TestDerivedValues:
    def test_stall_and_fallback_percentages(self):
        got = dict(derived_values(snapshot(counters={
            "sim.cycles.scalar": 25,
            "sim.cycles.batched": 75,
            "sim.stall_cycles": 10,
        })))
        assert got["simulated cycles"] == "100"
        assert got["stall cycles"] == "10 (10.00%)"
        assert got["scalar-fallback cycles"] == "25 (25.00%)"

    def test_cache_hit_rates(self):
        got = dict(derived_values(snapshot(counters={
            "polymem.plan_cache.hits": 9,
            "polymem.plan_cache.misses": 1,
            "benes.route_cache.hits": 1,
            "benes.route_cache.misses": 3,
        })))
        assert got["plan-cache hit rate"] == "90.0%"
        assert got["Benes route-cache hit rate"] == "25.0%"

    def test_achieved_vs_peak_bandwidth(self):
        got = dict(derived_values(snapshot(gauges={
            "stream.achieved_mbps": {"value": 7680.0},
            "stream.peak_mbps": {"value": 15360.0},
        })))
        assert got["achieved vs peak bandwidth"] == (
            "7680.0 / 15360.0 MB/s (50.0% of peak)"
        )

    def test_pcie_overhead_share(self):
        got = dict(derived_values(snapshot(counters={
            "pcie.ns": 10_000.0,
            "pcie.overhead_ns": 1_000.0,
            "pcie.calls": 4,
            "pcie.payload_bytes": 512,
        })))
        assert got["PCIe time"] == (
            "10.0 us over 4 calls, 512 B payload (10.0% call overhead)"
        )

    def test_exec_worker_utilization(self):
        got = dict(derived_values(snapshot(
            counters={
                "exec.cache.hits": 3,
                "exec.cache.misses": 1,
                "exec.wall_seconds": 2.0,
                "exec.compute_seconds": 6.0,
            },
            gauges={"exec.workers": {"value": 4}},
        )))
        assert got["exec cache hit rate"] == "75.0%"
        assert got["exec worker utilization"] == "75.0%"

    def test_empty_snapshot_derives_nothing(self):
        assert derived_values(snapshot()) == []


class TestDerivedMetrics:
    def test_numeric_keys_for_machine_consumption(self):
        got = derived_metrics(snapshot(
            counters={
                "sim.cycles.scalar": 25,
                "sim.cycles.batched": 75,
                "sim.stall_cycles": 10,
                "polymem.plan_cache.hits": 9,
                "polymem.plan_cache.misses": 1,
            },
            gauges={
                "stream.achieved_mbps": {"value": 7680.0},
                "stream.peak_mbps": {"value": 15360.0},
            },
        ))
        assert got["sim.stall_share"] == 0.10
        assert got["sim.scalar_fallback_share"] == 0.25
        assert got["plan_cache.hit_rate"] == 0.9
        assert got["stream.achieved_vs_peak"] == 0.5

    def test_absent_inputs_are_omitted_not_nan(self):
        assert derived_metrics(snapshot()) == {}
        assert derived_metrics({"format": SNAPSHOT_FORMAT}) == {}


class TestPartialSnapshots:
    """Satellite: a truncated/partial snapshot degrades to n/a cells,
    never KeyError — the summary of a broken run is when you need it."""

    def test_snapshot_without_metrics_block(self):
        text = render_summary({"format": SNAPSHOT_FORMAT, "label": "dead"})
        assert "telemetry summary — dead" in text

    def test_metrics_explicitly_null(self):
        text = render_summary({"format": SNAPSHOT_FORMAT, "metrics": None})
        assert "telemetry summary" in text

    def test_missing_counter_group_only(self):
        snap = {
            "format": SNAPSHOT_FORMAT,
            "metrics": {"gauges": {"depth": {"value": 2, "min": 0, "max": 5}}},
        }
        text = render_summary(snap)
        assert "gauges (last / min / max)" in text
        assert "counters" not in text
        assert derived_values(snap) == []

    def test_non_dict_gauge_record_renders_na(self):
        text = render_summary(snapshot(gauges={"depth": 7}))
        assert "n/a / n/a / n/a" in text

    def test_histogram_missing_fields_render_na(self):
        text = render_summary(snapshot(histograms={"sizes": {"count": 2}}))
        assert "2 / n/a / n/a" in text

    def test_truncated_gauge_record_keeps_known_fields(self):
        text = render_summary(snapshot(gauges={"depth": {"value": 3}}))
        assert "3 / n/a / n/a" in text

    def test_derived_section_survives_poisoned_inputs(self):
        # a gauge record of the wrong shape feeds the derived computation:
        # the quantity is skipped, the rest of the summary still renders
        snap = snapshot(
            counters={"exec.wall_seconds": 2.0, "exec.compute_seconds": 1.0},
            gauges={"exec.workers": "four"},
        )
        text = render_summary(snap)
        assert "exec.workers" in text  # the raw row still renders, as n/a
        assert "exec worker utilization" not in text
        assert "exec.worker_utilization" not in derived_metrics(snap)


class TestRenderSummary:
    def test_sections_present(self):
        text = render_summary(snapshot(
            counters={"sim.cycles.scalar": 1, "sim.cycles.batched": 9},
            gauges={"depth": {"value": 2, "min": 0, "max": 5, "n": 3}},
            histograms={"sizes": {"count": 2, "sum": 6.0, "mean": 3.0,
                                  "min": 2, "max": 4, "buckets": {"4": 2}}},
            trace_events=11,
        ))
        assert "telemetry summary — test" in text
        assert "counters" in text
        assert "gauges (last / min / max)" in text
        assert "histograms (count / mean / max)" in text
        assert "derived" in text
        assert "scalar-fallback cycles" in text
        assert "trace events: 11" in text
