"""Tests for the append-only performance run ledger."""

import json
from types import SimpleNamespace

import pytest

from repro.exec import Report, ReportEntry
from repro.telemetry import deactivate, session
from repro.telemetry.context import SNAPSHOT_FORMAT
from repro.telemetry.ledger import (
    LEDGER_FORMAT,
    TRAJECTORY_FORMAT,
    Ledger,
    LedgerEntry,
    default_ledger_path,
    git_provenance,
    host_fingerprint,
    maybe_record_sweep,
    record_run,
    update_trajectory,
)


@pytest.fixture(autouse=True)
def no_session_or_env(monkeypatch):
    deactivate()
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    yield
    deactivate()


def gate(name="g", ok=True, value=2.0):
    return {"name": name, "value": value, "op": ">=", "threshold": 1.0, "ok": ok}


class TestLedger:
    def test_append_read_roundtrip(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(LedgerEntry(bench="b", ts=1.0, gates=[gate()]))
        (entry,) = ledger.entries()
        assert entry.bench == "b"
        assert entry.format == LEDGER_FORMAT
        assert entry.gates == [gate()]
        assert len(ledger) == 1

    def test_appends_are_single_json_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append(LedgerEntry(bench="a"))
        ledger.append(LedgerEntry(bench="b"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["format"] == LEDGER_FORMAT for line in lines)

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = LedgerEntry(bench="good").to_json()
        path.write_text(
            "\n".join(
                [good, "not json {", '["a", "list"]', "", '{"no": "bench"}', good]
            )
            + "\n"
        )
        entries = Ledger(path).entries()
        assert [e.bench for e in entries] == ["good", "good"]

    def test_unknown_fields_are_filtered_not_fatal(self):
        entry = LedgerEntry.from_dict(
            {"bench": "x", "ts": 2.0, "from_the_future": {"v": 9}}
        )
        assert entry.bench == "x" and entry.ts == 2.0

    def test_bench_filter_last_and_benches(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        for i in range(3):
            ledger.append(LedgerEntry(bench="a", ts=float(i)))
        ledger.append(LedgerEntry(bench="b"))
        assert [e.ts for e in ledger.entries("a")] == [0.0, 1.0, 2.0]
        assert [e.ts for e in ledger.last(2, bench="a")] == [1.0, 2.0]
        assert ledger.benches() == ["a", "b"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "nope.jsonl").entries() == []

    def test_ok_property(self):
        assert LedgerEntry(bench="x").ok  # vacuously: no gates
        assert LedgerEntry(bench="x", gates=[gate(ok=True)]).ok
        assert not LedgerEntry(
            bench="x", gates=[gate(ok=True), gate(ok=False)]
        ).ok


class TestRecordRun:
    def test_provenance_complete(self, tmp_path):
        report = Report(
            title="t",
            entries=[
                ReportEntry(
                    experiment="e", quantity="q", measured=1.5, metrics={"m": 1}
                )
            ],
        )
        entry = record_run(
            "bench_x",
            params={"workload": "stream.copy"},
            gates=[gate()],
            report=report,
            timings={"wall_s": 0.5},
            flags={"engine": "batched"},
            repo_root=tmp_path,  # not a git repo: sha None, never raises
        )
        prov = entry.provenance
        assert set(prov) == {"git", "host", "backend", "flags", "model_version"}
        assert prov["git"] == {"sha": None, "dirty": None}
        assert prov["backend"] == "vectis"
        assert prov["flags"] == {"engine": "batched"}
        assert {"hostname", "platform", "machine", "python", "cpus"} <= set(
            prov["host"]
        )
        assert entry.run_id and entry.ts > 0
        assert entry.params == {"workload": "stream.copy"}
        assert entry.timings == {"wall_s": 0.5}
        assert entry.results == [
            {
                "experiment": "e",
                "quantity": "q",
                "measured": 1.5,
                "ok": None,
                "metrics": {"m": 1},
            }
        ]
        assert entry.telemetry is None  # no session active

    def test_backend_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "hbm2")
        assert record_run("b").provenance["backend"] == "hbm2"

    def test_captures_active_session_snapshot(self):
        with session() as tel:
            tel.metrics.counter("sim.chunks").inc(3)
            entry = record_run("b")
        assert entry.telemetry["format"] == SNAPSHOT_FORMAT
        assert entry.telemetry["metrics"]["counters"]["sim.chunks"] == 3

    def test_explicit_snapshot_dict_passes_through(self):
        snap = {"format": SNAPSHOT_FORMAT, "metrics": {"counters": {}}}
        assert record_run("b", telemetry=snap).telemetry is snap


class TestHelpers:
    def test_default_ledger_path(self, monkeypatch, tmp_path):
        assert default_ledger_path() is None
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        assert default_ledger_path() == tmp_path / "l.jsonl"

    def test_git_provenance_outside_repo(self, tmp_path):
        assert git_provenance(tmp_path) == {"sha": None, "dirty": None}

    def test_host_fingerprint_shape(self):
        fp = host_fingerprint()
        assert fp["cpus"] >= 1
        assert isinstance(fp["hostname"], str)


class TestTrajectory:
    def entry(self, ts):
        return LedgerEntry(
            bench="b", ts=ts, telemetry={"format": SNAPSHOT_FORMAT}
        )

    def test_mirror_accumulates_and_drops_telemetry(self, tmp_path):
        path = tmp_path / "BENCH_b.json"
        update_trajectory(path, self.entry(1.0))
        update_trajectory(path, self.entry(2.0))
        doc = json.loads(path.read_text())
        assert doc["format"] == TRAJECTORY_FORMAT
        assert doc["bench"] == "b"
        assert [r["ts"] for r in doc["runs"]] == [1.0, 2.0]
        assert all("telemetry" not in r for r in doc["runs"])

    def test_keep_bounds_history(self, tmp_path):
        path = tmp_path / "BENCH_b.json"
        for i in range(5):
            update_trajectory(path, self.entry(float(i)), keep=3)
        doc = json.loads(path.read_text())
        assert [r["ts"] for r in doc["runs"]] == [2.0, 3.0, 4.0]

    def test_corrupt_prior_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_b.json"
        path.write_text("{ not json")
        update_trajectory(path, self.entry(1.0))
        assert len(json.loads(path.read_text())["runs"]) == 1


class TestMaybeRecordSweep:
    def sweep(self):
        return SimpleNamespace(
            wall_seconds=1.0,
            warmup_seconds=0.1,
            ipc_seconds=0.05,
            compute_seconds=0.8,
            workers=2,
            chunks=3,
            n_cached=0,
            batched_points=90,
            results=[1, 2, 3],
        )

    def test_noop_without_ledger_env(self):
        snap = {"format": SNAPSHOT_FORMAT}
        assert maybe_record_sweep(["dse"], self.sweep(), snap) is None

    def test_noop_without_telemetry(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        assert maybe_record_sweep(["dse"], self.sweep(), None) is None
        assert not (tmp_path / "l.jsonl").exists()

    def test_appends_when_configured(self, monkeypatch, tmp_path):
        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        snap = {"format": SNAPSHOT_FORMAT}
        entry = maybe_record_sweep(["dse", "dse"], self.sweep(), snap)
        assert entry.bench == "sweep.dse"
        assert entry.params == {"experiments": ["dse"], "points": 3}
        assert entry.timings["wall_seconds"] == 1.0
        (stored,) = Ledger(path).entries()
        assert stored.bench == "sweep.dse"

    def test_mixed_experiments_name(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        entry = maybe_record_sweep(
            ["stream", "dse"], self.sweep(), {"format": SNAPSHOT_FORMAT}
        )
        assert entry.bench == "sweep.mixed"
