"""Tests for the metrics registry instruments."""

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_float_amounts(self):
        c = Counter()
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == 0.75


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge()
        for v in (3, 7, 1, 5):
            g.set(v)
        assert g.value == 5
        assert g.min == 1
        assert g.max == 7
        assert g.n == 4

    def test_to_dict_empty(self):
        assert Gauge().to_dict() == {
            "value": None, "min": None, "max": None, "n": 0,
        }


class TestHistogram:
    def test_bucket_of_powers_of_two(self):
        assert Histogram.bucket_of(0) == 1
        assert Histogram.bucket_of(1) == 1
        assert Histogram.bucket_of(1.5) == 2
        assert Histogram.bucket_of(5) == 8
        assert Histogram.bucket_of(8) == 8
        assert Histogram.bucket_of(9) == 16

    def test_observe_stats(self):
        h = Histogram()
        for v in (2, 6, 10):
            h.observe(v)
        assert h.count == 3
        assert h.total == 18
        assert h.mean == 6
        assert h.min == 2
        assert h.max == 10
        assert h.buckets == {2: 1, 8: 1, 16: 1}

    def test_mean_of_empty_is_zero(self):
        assert Histogram().mean == 0.0

    def test_to_dict_uses_string_bucket_keys(self):
        h = Histogram()
        h.observe(3)
        assert h.to_dict()["buckets"] == {"4": 1}


class TestRegistry:
    def test_instruments_are_lazily_created_and_cached(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        assert reg.counter("a") is c
        g = reg.gauge("b")
        assert reg.gauge("b") is g
        h = reg.histogram("c")
        assert reg.histogram("c") is h

    def test_timer_observes_seconds(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        h = reg.histogram("t")
        assert h.count == 1
        assert h.min >= 0

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.counter("a.count").inc()
        reg.gauge("depth").set(3)
        reg.histogram("sizes").observe(4)
        d = reg.to_dict()
        assert list(d) == ["counters", "gauges", "histograms"]
        assert list(d["counters"]) == ["a.count", "z.count"]
        assert d["counters"]["z.count"] == 2
        assert d["gauges"]["depth"]["value"] == 3
        assert d["histograms"]["sizes"]["count"] == 1
