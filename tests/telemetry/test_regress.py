"""Tests for the declarative gate table and the regression policy engine."""

import pytest

from repro.telemetry.ledger import Ledger, LedgerEntry
from repro.telemetry.regress import (
    GATE_TABLE,
    check_gates,
    evaluate_gate,
    regress,
    render_regress,
)


class TestEvaluateGate:
    def test_known_gate_uses_table(self):
        g = evaluate_gate("sim.batched_vs_scalar", 3.0)
        assert g == {
            "name": "sim.batched_vs_scalar",
            "value": 3.0,
            "op": ">=",
            "threshold": 2.0,
            "ok": True,
            "detail": GATE_TABLE["sim.batched_vs_scalar"].description,
        }

    def test_failing_gate(self):
        assert evaluate_gate("sim.batched_vs_scalar", 1.2)["ok"] is False

    def test_lower_is_better_gate(self):
        assert evaluate_gate("telemetry.guard_share", 0.01)["ok"] is True
        assert evaluate_gate("telemetry.guard_share", 0.2)["ok"] is False

    def test_explicit_overrides_beat_the_table(self):
        # the exec clamped-to-serial branch records an always-true bound
        g = evaluate_gate(
            "exec.scaling_1_to_4", 0.9, op=">=", threshold=0.0, detail="clamped"
        )
        assert g["ok"] is True and g["threshold"] == 0.0
        assert g["detail"] == "clamped"

    def test_unknown_name_needs_op_and_threshold(self):
        with pytest.raises(KeyError):
            evaluate_gate("no.such.gate", 1.0)
        with pytest.raises(KeyError):
            evaluate_gate("no.such.gate", 1.0, op=">=")
        g = evaluate_gate("no.such.gate", 1.0, op="<=", threshold=2.0)
        assert g["ok"] is True and g["detail"] == ""

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate("custom", 1.0, op="!=", threshold=2.0)

    def test_every_table_row_evaluates(self):
        for name, spec in GATE_TABLE.items():
            g = evaluate_gate(name, spec.threshold)
            assert g["op"] == spec.op and g["threshold"] == spec.threshold


class TestCheckGates:
    def test_messages_only_for_failures(self):
        gates = [
            evaluate_gate("sim.batched_vs_scalar", 5.0),
            evaluate_gate("telemetry.guard_share", 0.5),
        ]
        (msg,) = check_gates(gates)
        assert "telemetry.guard_share" in msg and "0.5 <= 0.05" in msg

    def test_empty_when_all_hold(self):
        assert check_gates([evaluate_gate("backend.layout_gain", 9.0)]) == []


def make_ledger(tmp_path, runs):
    """A ledger of (bench, gate_name, value) runs, oldest first."""
    ledger = Ledger(tmp_path / "ledger.jsonl")
    for i, (bench, name, value, *rest) in enumerate(runs):
        overrides = rest[0] if rest else {}
        ledger.append(
            LedgerEntry(
                bench=bench,
                ts=float(i),
                gates=[evaluate_gate(name, value, **overrides)],
            )
        )
    return ledger


class TestRegress:
    def test_hard_failure_reproduced_from_ledger(self, tmp_path):
        ledger = make_ledger(
            tmp_path, [("bench_sim", "sim.batched_vs_scalar", 1.5)]
        )
        report = regress(ledger)
        (v,) = report.verdicts
        assert v.status == "fail" and not report.ok
        assert (v.value, v.op, v.threshold) == (1.5, ">=", 2.0)
        assert v.baseline is None and v.n_baseline == 0

    def test_recorded_override_replays_the_same_branch(self, tmp_path):
        # 0.9x "speedup" recorded with the clamped always-true threshold
        # must re-evaluate as a pass, exactly like the in-process gate
        ledger = make_ledger(
            tmp_path,
            [
                (
                    "bench_exec",
                    "exec.scaling_1_to_4",
                    0.9,
                    {"op": ">=", "threshold": 0.0},
                )
            ],
        )
        assert regress(ledger).verdicts[0].status == "pass"

    def test_warn_when_passing_but_worse_than_baseline(self, tmp_path):
        runs = [("b", "sim.batched_vs_scalar", 3.0)] * 3
        runs.append(("b", "sim.batched_vs_scalar", 2.2))  # passes, -27%
        report = regress(make_ledger(tmp_path, runs), noise=0.10)
        (v,) = report.verdicts
        assert v.status == "warn" and report.ok
        assert v.baseline == 3.0 and v.n_baseline == 3
        assert "worse than baseline" in v.detail

    def test_pass_within_noise_of_baseline(self, tmp_path):
        runs = [("b", "sim.batched_vs_scalar", 3.0)] * 3
        runs.append(("b", "sim.batched_vs_scalar", 2.9))
        (v,) = regress(make_ledger(tmp_path, runs), noise=0.10).verdicts
        assert v.status == "pass"

    def test_warn_direction_flips_for_lower_is_better(self, tmp_path):
        runs = [("b", "telemetry.guard_share", 0.010)] * 3
        runs.append(("b", "telemetry.guard_share", 0.020))  # passes, 2x worse
        (v,) = regress(make_ledger(tmp_path, runs), noise=0.10).verdicts
        assert v.status == "warn"

    def test_baseline_window_bounds_history(self, tmp_path):
        # 5 ancient slow runs, then 5 recent fast ones, then a slow latest:
        # with window=5 the baseline is the fast median, so it warns
        runs = [("b", "sim.batched_vs_scalar", 2.1)] * 5
        runs += [("b", "sim.batched_vs_scalar", 4.0)] * 5
        runs.append(("b", "sim.batched_vs_scalar", 2.1))
        (v,) = regress(
            make_ledger(tmp_path, runs), baseline_window=5, noise=0.10
        ).verdicts
        assert v.baseline == 4.0 and v.status == "warn"
        # a window spanning the whole history drags the median down: pass
        (v,) = regress(
            make_ledger(tmp_path, runs), baseline_window=10, noise=0.10
        ).verdicts
        assert v.baseline < 4.0

    def test_only_newest_entry_is_judged_per_bench(self, tmp_path):
        runs = [
            ("b", "sim.batched_vs_scalar", 1.0),  # old failure
            ("b", "sim.batched_vs_scalar", 3.0),  # fixed since
        ]
        report = regress(make_ledger(tmp_path, runs))
        assert len(report.verdicts) == 1 and report.ok

    def test_bench_filter(self, tmp_path):
        ledger = make_ledger(
            tmp_path,
            [
                ("a", "sim.batched_vs_scalar", 3.0),
                ("b", "dse.batched_vs_scalar", 1.0),
            ],
        )
        report = regress(ledger, bench="a")
        assert [v.bench for v in report.verdicts] == ["a"]
        assert report.ok

    def test_non_numeric_gate_values_skipped(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(
            LedgerEntry(
                bench="b",
                gates=[{"name": "g", "value": "oops", "op": ">=",
                        "threshold": 1.0, "ok": False}],
            )
        )
        assert regress(ledger).verdicts == []

    def test_accepts_path_string(self, tmp_path):
        ledger = make_ledger(tmp_path, [("b", "sim.batched_vs_scalar", 3.0)])
        report = regress(str(ledger.path))
        assert report.ok and len(report.verdicts) == 1

    def test_to_dict_shape(self, tmp_path):
        ledger = make_ledger(tmp_path, [("b", "sim.batched_vs_scalar", 1.0)])
        doc = regress(ledger, baseline_window=7, noise=0.2).to_dict()
        assert doc["baseline_window"] == 7 and doc["noise"] == 0.2
        assert doc["verdicts"][0]["status"] == "fail"


class TestRender:
    def test_verdict_table(self, tmp_path):
        runs = [("b", "sim.batched_vs_scalar", 3.0)] * 2
        runs.append(("b", "sim.batched_vs_scalar", 1.5))
        text = render_regress(regress(make_ledger(tmp_path, runs)))
        assert "[FAIL]" in text
        assert "b:sim.batched_vs_scalar" in text
        assert "baseline 3 (n=2)" in text
        assert "0 pass, 0 warn, 1 fail" in text

    def test_empty_ledger(self, tmp_path):
        text = render_regress(regress(Ledger(tmp_path / "none.jsonl")))
        assert "no ledger entries" in text
