"""Tests for the span tracer and its Chrome-trace-event export."""

import json

import pytest

from repro.telemetry import SpanTracer


@pytest.fixture
def clocked():
    """A tracer with a manually advanced nanosecond clock."""
    state = {"ns": 0}
    tracer = SpanTracer(clock=lambda: state["ns"])
    return tracer, state


class TestSpans:
    def test_begin_end_emits_complete_event(self, clocked):
        tracer, clock = clocked
        tracer.begin("work", cat="test", size=3)
        clock["ns"] = 5_000
        tracer.end(cycles=7)
        (ev,) = tracer.events
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["ts"] == 0.0
        assert ev["dur"] == 5.0  # microseconds
        assert ev["tid"] == 1  # wall track
        assert ev["args"] == {"size": 3, "cycles": 7}

    def test_nested_spans_close_inner_first(self, clocked):
        tracer, clock = clocked
        tracer.begin("outer")
        clock["ns"] = 1_000
        tracer.begin("inner")
        clock["ns"] = 2_000
        tracer.end()
        clock["ns"] = 4_000
        tracer.end()
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]
        inner, outer = tracer.events
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_end_without_open_span_is_noop(self, clocked):
        tracer, _ = clocked
        tracer.end()
        assert tracer.events == []

    def test_span_context_manager_flags_aborted(self, clocked):
        tracer, _ = clocked
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (ev,) = tracer.events
        assert ev["args"]["aborted"] is True

    def test_instant_event(self, clocked):
        tracer, clock = clocked
        clock["ns"] = 3_000
        tracer.instant("marker", cat="test", k=1)
        (ev,) = tracer.events
        assert ev["ph"] == "i"
        assert ev["ts"] == 3.0
        assert ev["args"] == {"k": 1}

    def test_complete_ns_lands_on_sim_track(self, clocked):
        tracer, _ = clocked
        tracer.complete_ns("pcie.transfer", 10_000, 2_000, cat="pcie", bytes=64)
        (ev,) = tracer.events
        assert ev["tid"] == 2  # sim track
        assert ev["ts"] == 10.0
        assert ev["dur"] == 2.0

    def test_close_open_spans_flags_all_aborted(self, clocked):
        tracer, _ = clocked
        tracer.begin("a")
        tracer.begin("b")
        assert tracer.open_spans == 2
        tracer.close_open_spans()
        assert tracer.open_spans == 0
        assert all(e["args"]["aborted"] for e in tracer.events)
        # inner closes first, so nesting stays consistent
        assert [e["name"] for e in tracer.events] == ["b", "a"]


def _busy():
    return sum(i * i for i in range(500))


class TestProfileSpans:
    def test_profile_attached_to_matching_span(self):
        tracer = SpanTracer()
        tracer.profile_spans("work*", top=5)
        tracer.begin("work.hot")
        _busy()
        tracer.end()
        (ev,) = tracer.events
        rows = ev["args"]["profile"]
        assert rows and len(rows) <= 5
        for row in rows:
            assert set(row) == {"func", "ncalls", "tottime", "cumtime"}
        # ordered by cumulative time, heaviest first
        cums = [row["cumtime"] for row in rows]
        assert cums == sorted(cums, reverse=True)

    def test_non_matching_span_is_not_profiled(self):
        tracer = SpanTracer()
        tracer.profile_spans("kernel.*")
        tracer.begin("host.call")
        tracer.end()
        (ev,) = tracer.events
        assert "profile" not in ev["args"]

    def test_only_outermost_matching_span_profiled(self):
        # cProfile cannot nest: the inner matching span rides under the
        # outer span's profile instead of getting its own
        tracer = SpanTracer()
        tracer.profile_spans("work*")
        tracer.begin("work.outer")
        tracer.begin("work.inner")
        _busy()
        tracer.end()
        tracer.end()
        inner, outer = tracer.events
        assert "profile" not in inner["args"]
        assert "profile" in outer["args"]

    def test_profiler_slot_freed_between_spans(self):
        tracer = SpanTracer()
        tracer.profile_spans("work*")
        for _ in range(2):
            tracer.begin("work")
            _busy()
            tracer.end()
        assert all("profile" in e["args"] for e in tracer.events)

    def test_disabled_by_default_and_by_none(self):
        tracer = SpanTracer()
        tracer.begin("work")
        tracer.end()
        assert "profile" not in tracer.events[0]["args"]
        tracer.profile_spans("*")
        tracer.profile_spans(None)
        tracer.begin("work")
        tracer.end()
        assert "profile" not in tracer.events[1]["args"]

    def test_profiled_trace_is_json_serializable(self, tmp_path):
        tracer = SpanTracer()
        tracer.profile_spans("*", top=3)
        tracer.begin("work")
        _busy()
        tracer.end()
        path = tmp_path / "trace.json"
        tracer.save(path)
        doc = json.loads(path.read_text())
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(ev["args"]["profile"]) <= 3


class TestExport:
    def test_chrome_trace_has_track_metadata(self, clocked):
        tracer, _ = clocked
        tracer.begin("x")
        tracer.end()
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ns"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"wall time", "sim time"}
        assert {m["tid"] for m in meta} == {1, 2}

    def test_export_closes_dangling_spans(self, clocked):
        tracer, _ = clocked
        tracer.begin("left-open")
        doc = tracer.to_chrome_trace()
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["aborted"] is True

    def test_save_roundtrip(self, clocked, tmp_path):
        tracer, _ = clocked
        tracer.begin("x")
        tracer.end()
        path = tmp_path / "trace.json"
        tracer.save(path)
        doc = json.loads(path.read_text())
        assert any(e["name"] == "x" for e in doc["traceEvents"])
