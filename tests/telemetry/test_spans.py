"""Tests for the span tracer and its Chrome-trace-event export."""

import json

import pytest

from repro.telemetry import SpanTracer


@pytest.fixture
def clocked():
    """A tracer with a manually advanced nanosecond clock."""
    state = {"ns": 0}
    tracer = SpanTracer(clock=lambda: state["ns"])
    return tracer, state


class TestSpans:
    def test_begin_end_emits_complete_event(self, clocked):
        tracer, clock = clocked
        tracer.begin("work", cat="test", size=3)
        clock["ns"] = 5_000
        tracer.end(cycles=7)
        (ev,) = tracer.events
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["ts"] == 0.0
        assert ev["dur"] == 5.0  # microseconds
        assert ev["tid"] == 1  # wall track
        assert ev["args"] == {"size": 3, "cycles": 7}

    def test_nested_spans_close_inner_first(self, clocked):
        tracer, clock = clocked
        tracer.begin("outer")
        clock["ns"] = 1_000
        tracer.begin("inner")
        clock["ns"] = 2_000
        tracer.end()
        clock["ns"] = 4_000
        tracer.end()
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]
        inner, outer = tracer.events
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_end_without_open_span_is_noop(self, clocked):
        tracer, _ = clocked
        tracer.end()
        assert tracer.events == []

    def test_span_context_manager_flags_aborted(self, clocked):
        tracer, _ = clocked
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (ev,) = tracer.events
        assert ev["args"]["aborted"] is True

    def test_instant_event(self, clocked):
        tracer, clock = clocked
        clock["ns"] = 3_000
        tracer.instant("marker", cat="test", k=1)
        (ev,) = tracer.events
        assert ev["ph"] == "i"
        assert ev["ts"] == 3.0
        assert ev["args"] == {"k": 1}

    def test_complete_ns_lands_on_sim_track(self, clocked):
        tracer, _ = clocked
        tracer.complete_ns("pcie.transfer", 10_000, 2_000, cat="pcie", bytes=64)
        (ev,) = tracer.events
        assert ev["tid"] == 2  # sim track
        assert ev["ts"] == 10.0
        assert ev["dur"] == 2.0

    def test_close_open_spans_flags_all_aborted(self, clocked):
        tracer, _ = clocked
        tracer.begin("a")
        tracer.begin("b")
        assert tracer.open_spans == 2
        tracer.close_open_spans()
        assert tracer.open_spans == 0
        assert all(e["args"]["aborted"] for e in tracer.events)
        # inner closes first, so nesting stays consistent
        assert [e["name"] for e in tracer.events] == ["b", "a"]


class TestExport:
    def test_chrome_trace_has_track_metadata(self, clocked):
        tracer, _ = clocked
        tracer.begin("x")
        tracer.end()
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ns"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"wall time", "sim time"}
        assert {m["tid"] for m in meta} == {1, 2}

    def test_export_closes_dangling_spans(self, clocked):
        tracer, _ = clocked
        tracer.begin("left-open")
        doc = tracer.to_chrome_trace()
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["aborted"] is True

    def test_save_roundtrip(self, clocked, tmp_path):
        tracer, _ = clocked
        tracer.begin("x")
        tracer.end()
        path = tmp_path / "trace.json"
        tracer.save(path)
        doc = json.loads(path.read_text())
        assert any(e["name"] == "x" for e in doc["traceEvents"])
