"""Enabling telemetry must not change simulation results.

Every instrumentation site is observational — the same workload run with
metrics + tracing enabled must produce bit-identical data and identical
cycle accounting to a run with telemetry off.
"""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.polymem import PolyMem
from repro.program import execute
from repro.program.lower import lower_demo
from repro.stream_bench import StreamHarness, all_apps
from repro.stream_bench.apps import DEFAULT_SCALAR
from repro.stream_bench.controller import build_stream_design
from repro.telemetry import Telemetry, deactivate, session


@pytest.fixture(autouse=True)
def no_leaked_session():
    deactivate()
    yield
    deactivate()


def _run_stream(engine, vectors=96):
    design = build_stream_design()
    design.dfe.simulator.engine = engine
    harness = StreamHarness(design)
    app = next(a for a in all_apps() if a.name.lower() == "triad")
    arrays = harness.load_arrays(vectors)
    cycles = harness.run_app(app, vectors)
    got = harness.offload_array(app.destination, vectors)
    want = app.expected(arrays["a"], arrays["b"], arrays["c"], DEFAULT_SCALAR)
    return cycles, design.dfe.simulator.cycles, harness.host.clock_ns, got, want


def _run_program(name):
    program, mems = lower_demo(name)
    result = execute(program, mems)
    dumps = {k: pm.dump().copy() for k, pm in mems.items()}
    return result, dumps


class TestStreamBitIdentical:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_telemetry_does_not_perturb_simulation(self, engine):
        base = _run_stream(engine)
        with session(Telemetry(tracing=True)) as tel:
            instrumented = _run_stream(engine)
        # telemetry actually observed the run ...
        counters = tel.metrics.to_dict()["counters"]
        assert counters["sim.cycles.scalar"] + counters.get(
            "sim.cycles.batched", 0
        ) == instrumented[1]
        assert tel.tracer.events
        # ... without changing a single number
        assert base[0] == instrumented[0]  # compute cycles
        assert base[1] == instrumented[1]  # total simulated cycles
        assert base[2] == instrumented[2]  # host time ledger
        assert np.array_equal(base[3], instrumented[3])  # offloaded data
        assert np.allclose(instrumented[3], instrumented[4], rtol=1e-12)


class TestProgramBitIdentical:
    @pytest.mark.parametrize("name", ["matmul", "stencil", "reduce_rows"])
    def test_program_results_identical(self, name):
        base, base_dumps = _run_program(name)
        with session(Telemetry(tracing=True)) as tel:
            instrumented, tel_dumps = _run_program(name)
        counters = tel.metrics.to_dict()["counters"]
        assert counters["program.executions"] == 1
        assert counters["program.cycles"] == base.report.cycles
        assert base.report.cycles == instrumented.report.cycles
        assert set(base.env) == set(instrumented.env)
        for tag, val in base.env.items():
            assert np.array_equal(
                np.asarray(val), np.asarray(instrumented.env[tag])
            ), tag
        for mem_name, dump in base_dumps.items():
            assert np.array_equal(dump, tel_dumps[mem_name])


class TestReplayBitIdentical:
    def test_replay_counters_match_cycles(self):
        cfg = PolyMemConfig(4096, p=2, q=4, scheme="ReRo", rows=16, cols=32)

        def run():
            pm = PolyMem(cfg)
            rng = np.random.default_rng(7)
            data = rng.integers(0, 2**63, size=(16, 32), dtype=np.uint64)
            pm.load(data)
            out = pm.read_batch("row", np.zeros(4, np.int64),
                                np.arange(4, dtype=np.int64) * 8)
            return pm.cycles, out

        base_cycles, base_out = run()
        with session(Telemetry()) as tel:
            cycles, out = run()
        assert cycles == base_cycles
        assert np.array_equal(out, base_out)
        counters = tel.metrics.to_dict()["counters"]
        assert counters["polymem.cycles.batch"] == 4
        assert counters["polymem.parallel_accesses"] == 4
