"""Hypothesis fuzz: random MaxJ expression DAGs vs direct NumPy evaluation.

Builds random arithmetic graphs over float64 streams, compiles them, runs
them through the tick simulator, and checks every output element against
evaluating the same expression tree directly — exercising operator
plumbing, constant folding paths, pipeline timing and stream order at
once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import FLOAT64, KernelGraph, compile_graph

# safe float ops (no div -> no inf/nan surprises)
OPS = [
    ("+", lambda a, b: a + b),
    ("-", lambda a, b: a - b),
    ("*", lambda a, b: a * b),
]


@st.composite
def expression_plans(draw):
    """A plan: list of (op_index, left_ref, right_ref) building a DAG over
    two inputs (refs 0, 1) and previously built nodes."""
    n_nodes = draw(st.integers(1, 8))
    plan = []
    for k in range(n_nodes):
        max_ref = 1 + k  # inputs + nodes built so far
        plan.append(
            (
                draw(st.integers(0, len(OPS) - 1)),
                draw(st.integers(0, max_ref)),
                draw(st.integers(0, max_ref)),
            )
        )
    return plan


def build_both(plan):
    g = KernelGraph("fuzz")
    x = g.input("x", FLOAT64)
    y = g.input("y", FLOAT64)
    dsl_nodes = [x, y]
    py_nodes = [lambda a, b: a, lambda a, b: b]
    for op_idx, lref, rref in plan:
        name, fn = OPS[op_idx]
        dv = dsl_nodes[lref + 0]._bin(dsl_nodes[rref], name)
        dsl_nodes.append(dv)
        lf, rf = py_nodes[lref], py_nodes[rref]
        py_nodes.append(
            lambda a, b, fn=fn, lf=lf, rf=rf: fn(lf(a, b), rf(a, b))
        )
    g.output("out", dsl_nodes[-1])
    return g, py_nodes[-1]


@given(
    expression_plans(),
    st.lists(
        st.tuples(
            st.floats(-100, 100, allow_nan=False),
            st.floats(-100, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=60, deadline=None)
def test_random_expression_dags(plan, pairs):
    graph, reference = build_both(plan)
    xs = [np.float64(a) for a, _ in pairs]
    ys = [np.float64(b) for _, b in pairs]

    mgr = Manager("fuzz")
    kernel = mgr.add_kernel(compile_graph(graph))
    sx = mgr.add_kernel(SourceKernel("sx", xs))
    sy = mgr.add_kernel(SourceKernel("sy", ys))
    snk = mgr.add_kernel(SinkKernel("snk"))
    mgr.connect(sx, "out", kernel, "x")
    mgr.connect(sy, "out", kernel, "y")
    mgr.connect(kernel, "out", snk, "in")
    DFE(mgr, 100).run()

    assert len(snk.collected) == len(pairs)
    for got, a, b in zip(snk.collected, xs, ys):
        want = reference(a, b)
        assert got == want or np.isclose(float(got), float(want), rtol=1e-12)
