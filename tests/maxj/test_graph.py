"""Tests for the MaxJ-like graph builder and type system."""

import pytest

from repro.core.exceptions import SimulationError
from repro.maxj import BOOL, FLOAT64, INT64, UINT64, KernelGraph
from repro.maxj.types import UINT32, unify


class TestTypes:
    def test_integer_wrap(self):
        assert UINT64.cast(2**64 + 5) == 5
        assert UINT32.cast(2**32 + 7) == 7

    def test_bool_cast(self):
        assert BOOL.cast(3) is True
        assert BOOL.cast(0) is False

    def test_unify_identical(self):
        assert unify(UINT64, UINT64) is UINT64

    def test_unify_bool_promotes(self):
        assert unify(BOOL, FLOAT64) is FLOAT64
        assert unify(INT64, BOOL) is INT64

    def test_unify_mismatch(self):
        with pytest.raises(SimulationError, match="cast"):
            unify(UINT64, FLOAT64)


class TestGraphConstruction:
    def test_io_declaration(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        g.output("y", x + 1)
        assert set(g.inputs) == {"x"}
        assert set(g.outputs) == {"y"}

    def test_duplicate_io_rejected(self):
        g = KernelGraph("k")
        g.input("x", UINT64)
        with pytest.raises(SimulationError, match="duplicate"):
            g.input("x", UINT64)
        v = g.constant(1, UINT64)
        g.output("y", v)
        with pytest.raises(SimulationError, match="duplicate"):
            g.output("y", v)

    def test_scalar_operands_become_constants(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        y = x + 5
        const_nodes = [n for n in g.nodes if n.op == "const"]
        assert len(const_nodes) == 1
        assert const_nodes[0].payload == 5

    def test_reflected_operators(self):
        g = KernelGraph("k")
        x = g.input("x", FLOAT64)
        y = 2.0 * x  # __rmul__
        assert y.node.op == "*"

    def test_comparison_yields_bool(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        assert (x < 3).type is BOOL
        assert x.eq(3).type is BOOL

    def test_type_mismatch_raises(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        f = g.constant(1.0, FLOAT64)
        with pytest.raises(SimulationError, match="cast"):
            _ = x + f

    def test_explicit_cast(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        y = x.cast(FLOAT64) + 1.0
        assert y.type is FLOAT64

    def test_positive_offset_rejected(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        with pytest.raises(SimulationError, match="negative"):
            x.offset(1)
        with pytest.raises(SimulationError, match="negative"):
            x.offset(0)

    def test_no_outputs_rejected(self):
        g = KernelGraph("k")
        g.input("x", UINT64)
        with pytest.raises(SimulationError, match="no outputs"):
            g.validate()


class TestPipelineDepth:
    def test_add_chain(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        y = x + 1
        z = y + 1
        g.output("out", z)
        assert g.pipeline_depth() == 2

    def test_longest_path_wins(self):
        g = KernelGraph("k")
        x = g.input("x", FLOAT64)
        short = x + 1.0                 # depth 1
        long = x * 2.0 * 3.0            # depth 4
        g.output("out", short + long)   # + adds 1 -> 5
        assert g.pipeline_depth() == 5

    def test_divide_is_expensive(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        g.output("out", x // 3)
        assert g.pipeline_depth() == 8

    def test_max_offset(self):
        g = KernelGraph("k")
        x = g.input("x", UINT64)
        g.output("out", x.offset(-5) + x.offset(-2))
        assert g.max_offset() == 5
