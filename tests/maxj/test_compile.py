"""Tests for compiled MaxJ-like kernels running on the tick simulator."""

import numpy as np

from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import FLOAT64, INT64, UINT64, KernelGraph, compile_graph


def run_graph(graph, inputs, fill=0, clock=100):
    mgr = Manager("t")
    k = mgr.add_kernel(compile_graph(graph, fill=fill))
    for name, vals in inputs.items():
        src = mgr.add_kernel(SourceKernel(f"src_{name}", vals))
        mgr.connect(src, "out", k, name)
    sinks = {}
    for name in graph.outputs:
        snk = mgr.add_kernel(SinkKernel(f"snk_{name}"))
        mgr.connect(k, name, snk, "in")
        sinks[name] = snk
    result = DFE(mgr, clock).run()
    return {name: s.collected for name, s in sinks.items()}, result


class TestArithmetic:
    def test_elementwise_expression(self):
        g = KernelGraph("expr")
        x = g.input("x", INT64)
        y = g.input("y", INT64)
        g.output("out", (x + y) * 2 - 1)
        out, _ = run_graph(g, {"x": [1, 2, 3], "y": [10, 20, 30]})
        assert out["out"] == [21, 43, 65]

    def test_float_arithmetic(self):
        g = KernelGraph("f")
        x = g.input("x", FLOAT64)
        g.output("out", x / 4.0 + 0.5)
        out, _ = run_graph(g, {"x": [2.0, 6.0]})
        assert out["out"] == [1.0, 2.0]

    def test_uint_wraparound(self):
        """Hardware wrap semantics: uint64 overflow wraps silently."""
        g = KernelGraph("wrap")
        x = g.input("x", UINT64)
        g.output("out", x + np.uint64(1))
        out, _ = run_graph(g, {"x": [np.uint64(2**64 - 1)]})
        assert out["out"] == [0]

    def test_neg_abs(self):
        g = KernelGraph("na")
        x = g.input("x", INT64)
        g.output("neg", -x)
        g.output("abs", x.abs())
        out, _ = run_graph(g, {"x": [-3, 4]})
        assert out["neg"] == [3, -4]
        assert out["abs"] == [3, 4]

    def test_shifts_and_bits(self):
        g = KernelGraph("bits")
        x = g.input("x", UINT64)
        g.output("out", ((x << np.uint64(2)) | np.uint64(1)) & np.uint64(0xFF))
        out, _ = run_graph(g, {"x": [1, 3]})
        assert out["out"] == [5, 13]

    def test_multiple_outputs_share_subgraph(self):
        g = KernelGraph("shared")
        x = g.input("x", INT64)
        t = x * 3
        g.output("a", t + 1)
        g.output("b", t - 1)
        out, _ = run_graph(g, {"x": [2]})
        assert out["a"] == [7] and out["b"] == [5]


class TestControl:
    def test_mux(self):
        g = KernelGraph("mux")
        x = g.input("x", INT64)
        g.output("out", g.mux(x > 0, x, -x))  # |x|
        out, _ = run_graph(g, {"x": [-5, 3, -1]})
        assert out["out"] == [5, 3, 1]

    def test_counter(self):
        g = KernelGraph("ctr")
        x = g.input("x", UINT64)
        c = g.counter(UINT64)
        g.output("out", x + c)
        out, _ = run_graph(g, {"x": [10, 10, 10, 10]})
        assert out["out"] == [10, 11, 12, 13]

    def test_wrapping_counter(self):
        g = KernelGraph("ctrw")
        x = g.input("x", UINT64)
        g.output("out", g.counter(UINT64, wrap=3) + x * np.uint64(0))
        out, _ = run_graph(g, {"x": [0] * 7})
        assert out["out"] == [0, 1, 2, 0, 1, 2, 0]


class TestOffsets:
    def test_past_offset_with_fill(self):
        g = KernelGraph("off")
        x = g.input("x", INT64)
        g.output("out", x.offset(-1))
        out, _ = run_graph(g, {"x": [1, 2, 3]}, fill=-9)
        assert out["out"] == [-9, 1, 2]

    def test_moving_sum(self):
        g = KernelGraph("msum")
        x = g.input("x", INT64)
        g.output("out", x.offset(-2) + x.offset(-1) + x)
        out, _ = run_graph(g, {"x": [1, 2, 3, 4, 5]}, fill=0)
        assert out["out"] == [1, 3, 6, 9, 12]

    def test_deep_offset(self):
        g = KernelGraph("deep")
        x = g.input("x", INT64)
        g.output("out", x.offset(-4))
        out, _ = run_graph(g, {"x": list(range(6))}, fill=0)
        assert out["out"] == [0, 0, 0, 0, 0, 1]


class TestTiming:
    def test_results_delayed_by_pipeline_depth(self):
        g = KernelGraph("deep")
        x = g.input("x", FLOAT64)
        g.output("out", x * 2.0 * 3.0 * 4.0)  # depth 6
        mgr = Manager("t")
        k = mgr.add_kernel(compile_graph(g))
        src = mgr.add_kernel(SourceKernel("src", [1.0]))
        snk = mgr.add_kernel(SinkKernel("snk"))
        mgr.connect(src, "out", k, "x")
        mgr.connect(k, "out", snk, "in")
        dfe = DFE(mgr, 100)
        dfe.run(until=lambda: len(snk.collected) == 1, max_cycles=100)
        assert dfe.simulator.cycles >= g.pipeline_depth()

    def test_streams_at_one_per_cycle(self):
        """After the pipeline fills, throughput is 1 element/cycle."""
        g = KernelGraph("tp")
        x = g.input("x", FLOAT64)
        g.output("out", x * 2.0 * 3.0)
        n = 50
        out, result = run_graph(g, {"x": [float(v) for v in range(n)]})
        assert len(out["out"]) == n
        assert result.cycles <= n + g.pipeline_depth() + 5

    def test_zero_depth_passthrough(self):
        g = KernelGraph("wire")
        x = g.input("x", UINT64)
        g.output("out", x)
        out, _ = run_graph(g, {"x": [7, 8]})
        assert out["out"] == [7, 8]
        assert g.pipeline_depth() == 0
