"""Tests for the MaxJ accumulator node (stateful reductions)."""


from repro.maxeler import DFE, Manager, SinkKernel, SourceKernel
from repro.maxj import FLOAT64, INT64, UINT32, KernelGraph, compile_graph


def run(graph, inputs, fill=0):
    mgr = Manager("t")
    k = mgr.add_kernel(compile_graph(graph, fill=fill))
    for name, vals in inputs.items():
        src = mgr.add_kernel(SourceKernel(f"s_{name}", vals))
        mgr.connect(src, "out", k, name)
    sinks = {}
    for name in graph.outputs:
        snk = mgr.add_kernel(SinkKernel(f"k_{name}"))
        mgr.connect(k, name, snk, "in")
        sinks[name] = snk
    DFE(mgr, 100).run()
    return {n: s.collected for n, s in sinks.items()}


class TestAccumulator:
    def test_running_sum(self):
        g = KernelGraph("acc")
        x = g.input("x", INT64)
        g.output("total", g.accumulator(x))
        out = run(g, {"x": [1, 2, 3, 4]})
        assert out["total"] == [1, 3, 6, 10]

    def test_init_value(self):
        g = KernelGraph("acc")
        x = g.input("x", INT64)
        g.output("total", g.accumulator(x, init=100))
        assert run(g, {"x": [1, 1]})["total"] == [101, 102]

    def test_reset_restarts_at_value(self):
        g = KernelGraph("acc")
        x = g.input("x", INT64)
        c = g.counter(INT64, wrap=3)
        g.output("total", g.accumulator(x, reset=c.eq(0)))
        out = run(g, {"x": [1] * 7})
        assert out["total"] == [1, 2, 3, 1, 2, 3, 1]

    def test_float_accumulation(self):
        g = KernelGraph("acc")
        x = g.input("x", FLOAT64)
        g.output("total", g.accumulator(x))
        out = run(g, {"x": [0.5, 0.25, 0.125]})
        assert out["total"] == [0.5, 0.75, 0.875]

    def test_wraps_like_hardware(self):
        g = KernelGraph("acc")
        x = g.input("x", UINT32)
        g.output("total", g.accumulator(x, init=2**32 - 2))
        out = run(g, {"x": [1, 1, 1]})
        assert out["total"] == [2**32 - 1, 0, 1]

    def test_windowed_sum_via_offsets_vs_accumulator(self):
        """A reset accumulator over blocks equals the blockwise sum."""
        g = KernelGraph("blk")
        x = g.input("x", INT64)
        c = g.counter(INT64, wrap=4)
        total = g.accumulator(x, reset=c.eq(0))
        g.output("blocksum", total)
        data = list(range(8))
        out = run(g, {"x": data})
        # last element of each 4-block is the block sum
        assert out["blocksum"][3] == sum(data[:4])
        assert out["blocksum"][7] == sum(data[4:])

    def test_adds_latency(self):
        g = KernelGraph("acc")
        x = g.input("x", INT64)
        g.output("total", g.accumulator(x))
        assert g.pipeline_depth() == 1
