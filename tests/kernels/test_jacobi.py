"""Tests for the Jacobi iterative solver on PolyMem."""

import numpy as np
import pytest

from repro.core.exceptions import PatternError
from repro.kernels import jacobi_reference, jacobi_solve


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestJacobi:
    @pytest.mark.parametrize("iterations", [1, 3, 10])
    def test_matches_reference(self, rng, iterations):
        grid = rng.uniform(-50, 50, (8, 16))
        out, _ = jacobi_solve(grid, iterations)
        assert np.allclose(out, jacobi_reference(grid, iterations))

    def test_boundary_fixed(self, rng):
        grid = rng.uniform(0, 1, (8, 16))
        out, _ = jacobi_solve(grid, 4)
        assert (out[0] == grid[0]).all()
        assert (out[-1] == grid[-1]).all()
        assert (out[:, 0] == grid[:, 0]).all()
        assert (out[:, -1] == grid[:, -1]).all()

    def test_converges_to_laplace_solution(self):
        """Hot left wall, cold elsewhere: many sweeps smooth the interior
        monotonically toward the harmonic solution."""
        grid = np.zeros((8, 16))
        grid[:, 0] = 100.0
        out10, _ = jacobi_solve(grid, 10)
        out50, _ = jacobi_solve(grid, 50)
        ref50 = jacobi_reference(grid, 50)
        assert np.allclose(out50, ref50)
        # the interior warms up over time and stays below the wall value
        assert out50[4, 4] > out10[4, 4] > 0
        assert out50[4, 4] < 100

    def test_cycle_accounting(self, rng):
        grid = rng.uniform(0, 1, (8, 16))
        _, rep = jacobi_solve(grid, 2)
        interior = 8 - 2
        per_sweep = interior * (3 + 1) * (16 // 8)  # 3 reads + 1 write x strips
        assert rep.cycles == 2 * per_sweep

    def test_alignment_validation(self):
        with pytest.raises(PatternError, match="align"):
            jacobi_solve(np.zeros((7, 16)), 1)
        with pytest.raises(PatternError, match="align"):
            jacobi_solve(np.zeros((8, 12)), 1)

    def test_too_small(self):
        with pytest.raises(PatternError, match="interior"):
            jacobi_solve(np.zeros((2, 8)), 1)

    def test_zero_iterations_identity(self, rng):
        grid = rng.uniform(0, 1, (4, 8))
        out, rep = jacobi_solve(grid, 0)
        assert np.allclose(out, grid)
        assert rep.cycles == 0
