"""Tests for the PolyMem-backed application kernels."""

import numpy as np
import pytest

from repro.core.exceptions import PatternError
from repro.kernels import (
    load_matrix,
    matmul,
    matmul_scalar_cycles,
    reduce_columns,
    reduce_rows,
    stencil_reference,
    stencil_serial_cycles,
    stencil_sweep,
    transpose,
    transpose_serial_cycles,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestMatmul:
    def test_correct_product(self, rng):
        a = rng.integers(0, 100, (4, 8)).astype(np.uint64)
        b = rng.integers(0, 100, (8, 16)).astype(np.uint64)
        c, _ = matmul(a, b)
        assert (c == a @ b).all()

    def test_cycle_accounting(self, rng):
        a = rng.integers(0, 10, (4, 8)).astype(np.uint64)
        b = rng.integers(0, 10, (8, 8)).astype(np.uint64)
        _, rep = matmul(a, b)
        # 4 row fetches (1 access each) + 4*8 column fetches (1 each)
        assert rep.cycles == 4 + 4 * 8
        assert rep.elements_accessed == rep.cycles * 8
        assert rep.speedup_vs_scalar == 8.0

    def test_beats_scalar_memory(self, rng):
        a = rng.integers(0, 10, (4, 16)).astype(np.uint64)
        b = rng.integers(0, 10, (16, 8)).astype(np.uint64)
        _, rep = matmul(a, b)
        assert rep.cycles * 8 == matmul_scalar_cycles(4, 16, 8)

    def test_dimension_checks(self):
        with pytest.raises(PatternError, match="inner"):
            matmul(np.zeros((4, 8), np.uint64), np.zeros((16, 8), np.uint64))
        with pytest.raises(PatternError, match="align"):
            matmul(np.zeros((4, 9), np.uint64), np.zeros((9, 8), np.uint64))

    def test_larger_grid(self, rng):
        a = rng.integers(0, 50, (2, 16)).astype(np.uint64)
        b = rng.integers(0, 50, (16, 16)).astype(np.uint64)
        c, rep = matmul(a, b, p=2, q=8)
        assert (c == a @ b).all()
        assert rep.speedup_vs_scalar == 16.0


class TestTranspose:
    @pytest.mark.parametrize("shape", [(8, 8), (8, 16), (16, 8)])
    def test_correct(self, rng, shape):
        m = rng.integers(0, 1 << 40, shape).astype(np.uint64)
        t, _ = transpose(m)
        assert (t == m.T).all()

    def test_cycles_one_read_one_write_per_tile(self, rng):
        m = rng.integers(0, 100, (8, 16)).astype(np.uint64)
        _, rep = transpose(m)
        tiles = (8 // 2) * (16 // 4)
        assert rep.cycles == 2 * tiles

    def test_faster_than_serialized(self):
        # ReO banking pays a 2x arbiter penalty on every transposed write
        tiles = (8 // 2) * (16 // 4)
        assert transpose_serial_cycles(8, 16) == 3 * tiles

    def test_shape_validation(self):
        with pytest.raises(PatternError):
            transpose(np.zeros((6, 16), np.uint64))  # 6 % q(4) != 0


class TestStencil:
    def test_box_blur(self, rng):
        img = rng.integers(0, 256, (8, 16))
        w = np.ones((3, 3), dtype=int)
        out, _ = stencil_sweep(img, w)
        assert (out == stencil_reference(img, w)).all()

    def test_asymmetric_kernel(self, rng):
        img = rng.integers(0, 256, (8, 16))
        w = np.array([[0, 1, 0], [2, -4, 2], [0, 1, 0]])
        out, _ = stencil_sweep(img, w)
        assert (out == stencil_reference(img, w)).all()

    def test_5x5_kernel_boundaries(self, rng):
        img = rng.integers(0, 256, (8, 8))
        w = rng.integers(-3, 4, (5, 5))
        out, _ = stencil_sweep(img, w)
        assert (out == stencil_reference(img, w)).all()

    def test_zero_taps_skipped(self, rng):
        img = rng.integers(0, 256, (4, 8))
        w = np.zeros((3, 3), dtype=int)
        w[1, 1] = 1  # identity
        out, rep = stencil_sweep(img, w)
        assert (out == img).all()
        # only one tap -> one batch of tile reads
        assert rep.cycles == (4 // 2) * (8 // 4)

    def test_kernel_validation(self):
        with pytest.raises(PatternError, match="odd square"):
            stencil_sweep(np.zeros((4, 8)), np.ones((2, 2), int))
        with pytest.raises(PatternError, match="align"):
            stencil_sweep(np.zeros((5, 8)), np.ones((3, 3), int))

    def test_speedup_is_lane_count(self, rng):
        img = rng.integers(0, 256, (4, 8))
        w = np.ones((3, 3), dtype=int)
        _, rep = stencil_sweep(img, w)
        assert rep.speedup_vs_scalar == 8.0
        assert rep.cycles * 8 == stencil_serial_cycles(4, 8, w)


class TestReductions:
    def test_row_sums(self, rng):
        m = rng.integers(0, 1000, (16, 32)).astype(np.uint64)
        sums, rep = reduce_rows(load_matrix(m))
        assert (sums == m.sum(axis=1)).all()
        assert rep.cycles == 16 * (32 // 8)

    def test_column_sums_same_memory(self, rng):
        """Multiview: both reductions run on one stored matrix."""
        m = rng.integers(0, 1000, (16, 32)).astype(np.uint64)
        pm = load_matrix(m)
        rs, _ = reduce_rows(pm)
        cs, _ = reduce_columns(pm)
        assert (rs == m.sum(axis=1)).all()
        assert (cs == m.sum(axis=0)).all()

    def test_alignment_check(self):
        with pytest.raises(PatternError):
            load_matrix(np.zeros((10, 32), np.uint64))

    def test_report_fields(self, rng):
        m = rng.integers(0, 10, (8, 8)).astype(np.uint64)
        _, rep = reduce_rows(load_matrix(m))
        assert rep.kernel == "reduce_rows"
        assert rep.result_elements == 8
        assert rep.elements_accessed == 64
