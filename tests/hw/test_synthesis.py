"""Tests for the calibrated synthesis model and its paper-shape claims."""

import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.hw import calibration
from repro.hw.crossbar import design_shuffles
from repro.hw.fpga import VIRTEX6_SX475T, devices
from repro.hw.synthesis import LUT_TO_LOGIC_RATIO, SynthesisModel, default_model


@pytest.fixture(scope="module")
def model():
    return default_model()


def cfg_for(lanes, cap_kb, ports=1, scheme=Scheme.ReRo):
    p, q = {8: (2, 4), 16: (2, 8)}[lanes]
    return PolyMemConfig(cap_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports)


class TestCalibrationData:
    def test_table_iv_is_complete(self):
        for scheme, row in calibration.TABLE_IV_MHZ.items():
            assert len(row) == len(calibration.TABLE_IV_COLUMNS)

    def test_table_iv_grid_builds_all_cells(self):
        cells = calibration.table_iv_grid()
        assert len(cells) == 5 * 18

    def test_headline_frequencies(self):
        """Paper: highest frequency 202 MHz (ReO/512K/8L/1P); highest
        multiview 196 MHz (ReCo); minimum 77 MHz."""
        all_vals = [v for row in calibration.TABLE_IV_MHZ.values() for v in row]
        assert max(all_vals) == 202
        assert min(all_vals) == 77
        assert calibration.table_iv_frequency(Scheme.ReO, 512, 8, 1) == 202
        multiview = [
            v
            for s, row in calibration.TABLE_IV_MHZ.items()
            if s is not Scheme.ReO
            for v in row
        ]
        assert max(multiview) == 196

    def test_lookup_outside_grid(self):
        assert calibration.table_iv_frequency(Scheme.ReO, 4096, 8, 2) is None


class TestFrequencyModel:
    def test_fit_quality(self, model):
        assert model.freq_fit_stats["r2"] > 0.8
        assert model.freq_fit_stats["mean_abs_pct_err"] < 10

    def test_peak_frequency_cell(self, model):
        """The fastest paper cell stays the fastest under the model family
        (within the 8-lane single-port group)."""
        f = model.frequency_mhz(cfg_for(8, 512, 1, Scheme.ReO))
        assert f == pytest.approx(202, rel=0.10)

    def test_monotone_in_capacity(self, model):
        freqs = [model.frequency_mhz(cfg_for(8, kb)) for kb in (512, 1024, 2048, 4096)]
        assert freqs == sorted(freqs, reverse=True)

    def test_monotone_in_ports(self, model):
        freqs = [model.frequency_mhz(cfg_for(8, 512, r)) for r in (1, 2, 3, 4)]
        assert freqs == sorted(freqs, reverse=True)

    def test_more_lanes_is_slower(self, model):
        assert model.frequency_mhz(cfg_for(16, 512)) < model.frequency_mhz(
            cfg_for(8, 512)
        )

    def test_deterministic(self):
        m1, m2 = SynthesisModel(), SynthesisModel()
        cfg = cfg_for(8, 1024, 2)
        assert m1.frequency_mhz(cfg) == m2.frequency_mhz(cfg)


class TestLogicModel:
    def test_exact_on_calibration_points(self, model):
        assert model.logic_fit_stats["max_abs_err_pp"] < 0.5

    def test_paper_prose_points(self, model):
        assert model.logic_pct(cfg_for(8, 512, 1, Scheme.ReO)) == pytest.approx(
            10.58, abs=0.3
        )
        assert model.logic_pct(cfg_for(8, 512, 4, Scheme.ReRo)) == pytest.approx(
            22.34, abs=0.3
        )
        assert model.logic_pct(cfg_for(16, 512, 1, Scheme.ReRo)) == pytest.approx(
            23.73, abs=0.3
        )

    def test_logic_under_38_pct_everywhere(self, model):
        """§IV-C summary: logic utilization stays under 38% on the grid."""
        for cfg, _ in calibration.table_iv_grid():
            assert model.logic_pct(cfg) < 38.0

    def test_lut_within_paper_range(self, model):
        """LUT utilization varies between ~7% and 28% (paper Fig. 7)."""
        luts = [model.lut_pct(cfg) for cfg, _ in calibration.table_iv_grid()]
        assert min(luts) > 6.0
        assert max(luts) < 28.0

    def test_capacity_barely_moves_logic(self, model):
        """Paper: 8-lane 1-port logic varies only 10.58% -> 13.05% from
        512 KB to 4 MB."""
        lo = model.logic_pct(cfg_for(8, 512, 1, Scheme.ReO))
        hi = model.logic_pct(cfg_for(8, 4096, 1, Scheme.RoCo))
        assert hi - lo < 3.0

    def test_ports_roughly_double_logic(self, model):
        """Paper: 1 -> 4 ports takes ReRo/512K/8L from 10.78% to 22.34%."""
        one = model.logic_pct(cfg_for(8, 512, 1))
        four = model.logic_pct(cfg_for(8, 512, 4))
        assert 1.8 < four / one < 2.4

    def test_supralinear_lane_doubling(self, model):
        """Paper: 8 -> 16 lanes is supra-linear (10.78% -> 23.73%)."""
        eight = model.logic_pct(cfg_for(8, 512, 1))
        sixteen = model.logic_pct(cfg_for(16, 512, 1))
        assert sixteen / eight > 2.0


class TestEstimate:
    def test_report_fields(self, model):
        r = model.estimate(cfg_for(8, 512))
        assert r.fmax_mhz > 0 and r.feasible
        assert r.period_ns == pytest.approx(1e3 / r.fmax_mhz)
        assert r.lut_pct == pytest.approx(r.logic_pct * LUT_TO_LOGIC_RATIO)

    def test_infeasible_detected(self, model):
        r = model.estimate(cfg_for(16, 4096, 2))
        assert not r.feasible

    def test_default_model_cached(self):
        assert default_model() is default_model()

    def test_devices_registry(self):
        assert "xc6vsx475t" in devices()
        assert VIRTEX6_SX475T.bram_bytes_64bit == 1064 * 4096


class TestShuffleInventory:
    def test_counts(self):
        inv = design_shuffles(cfg_for(8, 512, 3))
        assert inv.data_crossbars == 4  # 3 read + 1 write
        assert inv.addr_crossbars == 4
        assert inv.total_crossbars == 8

    def test_benes_cheaper_than_full(self):
        cfg = cfg_for(16, 512)
        assert (
            design_shuffles(cfg, "benes").total_luts
            < design_shuffles(cfg, "full").total_luts
        )

    def test_unknown_realization(self):
        with pytest.raises(ValueError):
            design_shuffles(cfg_for(8, 512), "quantum")

    def test_quadratic_lane_growth(self):
        l8 = design_shuffles(cfg_for(8, 512)).total_luts
        l16 = design_shuffles(cfg_for(16, 512)).total_luts
        assert 3.5 < l16 / l8 < 4.6
