"""Satellite: interpolation edges of the calibrated models.

``SynthesisModel`` is least-squares fit to the paper's published points
(``TABLE_IV_MHZ``, ``LOGIC_POINTS``, ``BRAM_POINTS``).  These tests pin
its behaviour *at* the fit grid's corners and *beyond* it — the edges the
what-if sweeps extrapolate into — and the exact-grid contract of
``table_iv_frequency``."""

import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.hw.calibration import (
    BRAM_POINTS,
    LOGIC_POINTS,
    TABLE_IV_COLUMNS,
    TABLE_IV_MHZ,
    table_iv_frequency,
)
from repro.hw.synthesis import default_model


def cfg(capacity_kb, lanes, ports, scheme=Scheme.ReRo):
    p, q = {8: (2, 4), 16: (2, 8)}[lanes]
    return PolyMemConfig(
        capacity_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports
    )


class TestTableIvGridContract:
    def test_every_grid_point_returns_its_cell(self):
        """On-grid queries return the transcribed value exactly."""
        for scheme, row in TABLE_IV_MHZ.items():
            for (cap, lanes, ports), mhz in zip(TABLE_IV_COLUMNS, row):
                got = table_iv_frequency(scheme, cap, lanes, ports)
                assert got == float(mhz)
                assert isinstance(got, float)

    @pytest.mark.parametrize(
        "cap,lanes,ports",
        [
            (256, 8, 1),     # below the capacity grid
            (8192, 8, 1),    # beyond the capacity grid
            (512, 32, 1),    # lane count never synthesized
            (512, 8, 5),     # port count past the table
            (2048, 8, 3),    # inside the ranges but not a published column
            (4096, 8, 2),    # ditto: 4 MB was only taken to 1 port
            (513, 8, 1),     # off-grid capacity between columns
        ],
    )
    def test_off_grid_queries_return_none(self, cap, lanes, ports):
        for scheme in Scheme:
            assert table_iv_frequency(scheme, cap, lanes, ports) is None


class TestFrequencyModelEdges:
    @pytest.fixture(scope="class")
    def model(self):
        return default_model()

    def test_sane_at_the_grid_corners(self, model):
        """At the fastest and slowest published cells, the fit stays in
        the table's own [77, 202] MHz band with generous slack."""
        fast = model.frequency_mhz(cfg(512, 8, 1, Scheme.ReO))
        slow = model.frequency_mhz(cfg(4096, 16, 1, Scheme.ReTr))
        assert 150 < fast < 250
        assert 60 < slow < 150
        assert fast > slow

    def test_extrapolation_beyond_the_grid_stays_physical(self, model):
        """Off-grid queries (larger/smaller than every fit point) must
        stay positive and finite — NNLS on period guarantees the period
        can only grow with the features."""
        tiny = model.frequency_mhz(cfg(64, 8, 1))
        huge = model.frequency_mhz(cfg(8192, 16, 4))
        assert 0 < huge < tiny < 1000
        for mhz in (tiny, huge):
            assert mhz == mhz  # not NaN

    def test_period_monotone_in_read_ports(self, model):
        """More replicated crossbars never speed the clock up."""
        freqs = [model.frequency_mhz(cfg(512, 8, n)) for n in range(1, 7)]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_period_monotone_in_capacity(self, model):
        caps = [256, 512, 1024, 2048, 4096, 8192]
        freqs = [model.frequency_mhz(cfg(c, 8, 1)) for c in caps]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))


class TestLogicModelEdges:
    @pytest.fixture(scope="class")
    def model(self):
        return default_model()

    def test_reproduces_fit_points_closely(self, model):
        """At the five §IV-C prose points the fit must sit within 2 pp
        (its own recorded residuals are well under that)."""
        for pt in LOGIC_POINTS:
            got = model.logic_pct(cfg(pt.capacity_kb, pt.lanes, pt.read_ports, pt.scheme))
            assert got == pytest.approx(pt.percent, abs=2.0)
        assert model.logic_fit_stats["max_abs_err_pp"] < 2.0

    def test_extrapolation_beyond_the_grid(self, model):
        """Beyond every LOGIC_POINT (8 MB, 4 ports): still positive,
        still monotone in ports, and large enough to flag pressure."""
        base = model.logic_pct(cfg(8192, 16, 1))
        pushed = model.logic_pct(cfg(8192, 16, 2))
        assert 0 < base < pushed

    def test_below_the_grid_capacity_term_clamps(self, model):
        """Capacities under the 512 KB fit floor share the floor's
        capacity term (log2(cap/512) clamps at 0), so only the crossbar
        share may differ — the estimate cannot go negative."""
        assert model.logic_pct(cfg(64, 8, 1)) == pytest.approx(
            model.logic_pct(cfg(512, 8, 1)), abs=0.5
        )
        assert model.logic_pct(cfg(64, 8, 1)) > 0


class TestBramModelEdges:
    def test_anchor_point_is_exact(self):
        """The 512 KB / 8-lane / 1-port anchor is pure block arithmetic:
        128 data + 43 infra of 1064 RAMB36 = 16.07%, to the paper's two
        printed decimals."""
        got = default_model().bram_pct(cfg(512, 8, 1))
        assert got == pytest.approx(16.07, abs=0.005)

    def test_prose_points_within_model_error(self):
        """The other §IV-C cells carry per-bank infrastructure the exact
        arithmetic deliberately omits (the 16-lane cell) or sit at the
        clamp (97% -> 100%); all stay within a few points."""
        model = default_model()
        for pt in BRAM_POINTS:
            got = model.bram_pct(
                cfg(pt.capacity_kb, pt.lanes, pt.read_ports, pt.scheme)
            )
            assert got == pytest.approx(pt.percent, abs=4.0)
