"""Consistency tests over the embedded paper data itself.

The calibration tables are hand-transcribed from the paper; these tests
pin the transcription against every cross-checkable statement in the
paper's prose, so a typo in the data cannot silently skew the models.
"""

import pytest

from repro.core.schemes import Scheme
from repro.hw.calibration import (
    BRAM_POINTS,
    LOGIC_POINTS,
    STREAM_COPY,
    TABLE_IV_COLUMNS,
    TABLE_IV_MHZ,
    table_iv_grid,
)


class TestTableIvTranscription:
    def test_18_columns_per_row(self):
        for scheme, row in TABLE_IV_MHZ.items():
            assert len(row) == 18, scheme

    def test_column_grid_structure(self):
        """Columns follow (size major, lanes, ports minor) with the
        paper's feasibility boundary."""
        by_cap = {}
        for cap, lanes, ports in TABLE_IV_COLUMNS:
            by_cap.setdefault(cap, []).append((lanes, ports))
        assert by_cap[512] == [(8, 1), (8, 2), (8, 3), (8, 4), (16, 1), (16, 2)]
        assert by_cap[1024] == by_cap[512]
        assert by_cap[2048] == [(8, 1), (8, 2), (16, 1), (16, 2)]
        assert by_cap[4096] == [(8, 1), (16, 1)]

    def test_prose_extremes(self):
        """'The highest frequency, 202MHz, is achieved by the 512KB,
        8-lane, single read port ReO design' / 'minimum ... 77MHz'."""
        idx = TABLE_IV_COLUMNS.index((512, 8, 1))
        assert TABLE_IV_MHZ[Scheme.ReO][idx] == 202
        assert max(max(r) for r in TABLE_IV_MHZ.values()) == 202
        assert min(min(r) for r in TABLE_IV_MHZ.values()) == 77
        # 77 appears for ReRo/ReTr 1MB 4-port and ReTr 2MB/16L/2P
        i77 = TABLE_IV_COLUMNS.index((1024, 8, 4))
        assert TABLE_IV_MHZ[Scheme.ReRo][i77] == 77

    def test_prose_multiview_peak(self):
        """'the highest clock frequency is 196MHz for the 512KB, 8-lane,
        single read port ReCo configuration'."""
        idx = TABLE_IV_COLUMNS.index((512, 8, 1))
        assert TABLE_IV_MHZ[Scheme.ReCo][idx] == 196
        multiview_max = max(
            v
            for s, row in TABLE_IV_MHZ.items()
            if s is not Scheme.ReO
            for v in row
        )
        assert multiview_max == 196

    def test_stream_clock_cross_reference(self):
        """§V: the STREAM design synthesized 'at 120MHz, just 2 MHz lower
        than the maximum clock frequency for a 2048KB configuration with a
        single read port' (RoCo)."""
        idx = TABLE_IV_COLUMNS.index((2048, 8, 1))
        assert TABLE_IV_MHZ[Scheme.RoCo][idx] == 122
        assert STREAM_COPY.clock_mhz == 120 == 122 - 2

    def test_grid_builder_count(self):
        assert len(table_iv_grid()) == 90


class TestProsePoints:
    def test_logic_points_match_prose(self):
        vals = {(p.scheme, p.capacity_kb, p.lanes, p.read_ports): p.percent
                for p in LOGIC_POINTS}
        assert vals[(Scheme.ReO, 512, 8, 1)] == 10.58
        assert vals[(Scheme.RoCo, 4096, 8, 1)] == 13.05
        assert vals[(Scheme.ReRo, 512, 8, 1)] == 10.78
        assert vals[(Scheme.ReRo, 512, 8, 4)] == 22.34
        assert vals[(Scheme.ReRo, 512, 16, 1)] == 23.73
        # the paper's own claim: 1 -> 4 ports 'doubles' the logic
        assert vals[(Scheme.ReRo, 512, 8, 4)] / vals[
            (Scheme.ReRo, 512, 8, 1)
        ] == pytest.approx(2.07, abs=0.01)

    def test_bram_points_match_prose(self):
        vals = {(p.capacity_kb, p.lanes, p.read_ports): p.percent
                for p in BRAM_POINTS}
        assert vals[(512, 8, 1)] == 16.07
        assert vals[(512, 16, 1)] == 19.31
        assert vals[(512, 8, 2)] == 29.04
        assert vals[(2048, 16, 2)] == 97.0

    def test_stream_reference_arithmetic(self):
        """15360 = 2 x 8 x 8 x 120; 15301/15360 > 99%; arrays 170x512x8B."""
        r = STREAM_COPY
        assert r.peak_mbps == 2 * 8 * 8 * r.clock_mhz
        assert r.measured_mbps / r.peak_mbps > 0.99
        assert r.max_array_rows * r.array_cols * r.word_bytes == pytest.approx(
            700 * 1024, rel=0.03
        )
