"""Tests for the vendor-style synthesis report."""


from repro.core.config import KB, MB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.hw.report import synthesis_report_text


class TestSynthesisReport:
    def test_contains_all_sections(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo)
        text = synthesis_report_text(cfg)
        for token in (
            "SYNTHESIS ESTIMATE",
            "512KB-8L-1R-ReRo",
            "xc6vsx475t",
            "Fmax",
            "RAMB36/bank",
            "crossbar LUTs",
            "FEASIBLE",
        ):
            assert token in text, token

    def test_numbers_match_model(self):
        from repro.hw.synthesis import default_model

        cfg = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReO)
        text = synthesis_report_text(cfg)
        est = default_model().estimate(cfg)
        assert f"{est.fmax_mhz:7.1f} MHz" in text
        assert f"{est.logic_pct:5.2f}%" in text
        assert "16.07%" in text  # the paper's BRAM anchor point

    def test_infeasible_verdict(self):
        cfg = PolyMemConfig(4 * MB, p=2, q=8, read_ports=2)
        text = synthesis_report_text(cfg)
        assert "INFEASIBLE" in text

    def test_multiport_replication_visible(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4, read_ports=3)
        text = synthesis_report_text(cfg)
        assert "x 3 replicas" in text
        assert "4 data" in text  # 3 read + 1 write data crossbars
