"""Unit tests for BRAM primitive arithmetic and budgets."""

import pytest

from repro.core.config import KB, MB, PolyMemConfig
from repro.core.exceptions import CapacityError
from repro.hw.bram import RAMB36, BramBudget, polymem_bram_usage


class TestRAMB36:
    def test_words_64bit(self):
        # 64-bit words use the 512 x 72 aspect ratio
        assert RAMB36().words_at_width(64) == 512

    def test_words_narrow(self):
        assert RAMB36().words_at_width(32) == 1024
        assert RAMB36().words_at_width(36) == 1024
        assert RAMB36().words_at_width(1) == 32768

    def test_blocks_for_bank_64bit(self):
        prim = RAMB36()
        assert prim.blocks_for_bank(512, 64) == 1
        assert prim.blocks_for_bank(513, 64) == 2
        assert prim.blocks_for_bank(8192, 64) == 16

    def test_blocks_for_wide_bank(self):
        # 128-bit words need 2 blocks side by side
        assert RAMB36().blocks_for_bank(512, 128) == 2

    def test_blocks_for_bank_validation(self):
        with pytest.raises(CapacityError):
            RAMB36().blocks_for_bank(0, 64)


class TestPolymemBramUsage:
    def test_paper_512kb_8lane_1port(self):
        """The paper's 16.07% data point: 128 data + 43 infra = 171/1064."""
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        b = polymem_bram_usage(cfg)
        assert b.data_blocks == 128
        assert b.total_blocks == 171
        assert b.utilization == pytest.approx(0.1607, abs=1e-3)

    def test_port_replication_doubles_data(self):
        cfg1 = PolyMemConfig(512 * KB, p=2, q=4, read_ports=1)
        cfg2 = cfg1.with_(read_ports=2)
        assert (
            polymem_bram_usage(cfg2).data_blocks
            == 2 * polymem_bram_usage(cfg1).data_blocks
        )

    def test_scheme_does_not_affect_brams(self):
        """Paper §IV-C: 'the memory scheme has no influence on the amount of
        BRAMs used.'"""
        from repro.core.schemes import Scheme

        base = None
        for scheme in (Scheme.ReO, Scheme.ReRo, Scheme.RoCo):
            cfg = PolyMemConfig(1 * MB, p=2, q=8, scheme=scheme)
            blocks = polymem_bram_usage(cfg).data_blocks
            base = blocks if base is None else base
            assert blocks == base

    def test_infra_clamped_when_full(self):
        """The 4 MB / 2-port-equivalent config leaves <43 blocks of slack."""
        cfg = PolyMemConfig(2 * MB, p=2, q=8, read_ports=2)
        b = polymem_bram_usage(cfg)
        assert b.data_blocks == 1024
        assert b.infra_blocks == 1064 - 1024
        assert b.utilization == pytest.approx(1.0)
        assert b.feasible

    def test_infeasible_when_data_exceeds_device(self):
        cfg = PolyMemConfig(4 * MB, p=2, q=8, read_ports=2)
        b = polymem_bram_usage(cfg)
        assert not b.feasible

    def test_paper_feasibility_boundary(self):
        """Feasible exactly when capacity x ports <= 4 MB — this bounds the
        paper's Table IV grid."""
        for cap_mb, ports, expect in [
            (0.5, 4, True),
            (1, 4, True),
            (2, 2, True),
            (2, 3, False),
            (4, 1, True),
            (4, 2, False),
        ]:
            cfg = PolyMemConfig(int(cap_mb * MB), p=2, q=4, read_ports=ports)
            assert polymem_bram_usage(cfg).feasible is expect, (cap_mb, ports)

    def test_budget_fields(self):
        b = BramBudget(data_blocks=100, infra_blocks=10, device_blocks=1000)
        assert b.total_blocks == 110
        assert b.utilization == pytest.approx(0.11)
        assert b.feasible
