"""Cross-grid verification: the static scheme table holds on every legal
lane geometry, not just the paper's two.

These are the heaviest exhaustive checks in the suite (anchor-period x
pattern x scheme per grid), kept tractable by limiting each grid to the
claims the spec actually makes.
"""

import math

import numpy as np
import pytest

from repro.core.conflict import ConflictAnalyzer, is_conflict_free
from repro.core.patterns import AccessPattern, PatternKind
from repro.core.schemes import SCHEME_SPECS, Scheme

GRIDS = [(2, 2), (2, 4), (4, 2), (2, 8), (8, 2), (4, 4), (2, 16), (4, 8)]


@pytest.mark.parametrize("p,q", GRIDS)
def test_spec_sound_on_grid(p, q):
    """Every claimed (pattern, anchor, condition) is truly conflict-free —
    spot-checked at a spread of anchors (the exhaustive residue sweep runs
    on the paper grids in test_conflict.py)."""
    n = p * q
    anchors = [(0, n), (1, n + 1), (p, n + q), (n - 1, 2 * n - 1), (3, n + 5)]
    for scheme in Scheme:
        if scheme is Scheme.ReTr and (p % q and q % p):
            continue
        spec = SCHEME_SPECS[scheme]
        for entry in spec.supported:
            if not entry.condition_holds(p, q):
                continue
            for i, j in anchors:
                if not entry.anchor_ok(i, j, p, q):
                    continue
                assert is_conflict_free(scheme, entry.kind, i, j, p, q), (
                    scheme,
                    entry.kind,
                    (i, j),
                )


@pytest.mark.parametrize("p,q", [(2, 16), (4, 8), (8, 2)])
def test_retr_full_domain_on_larger_grids(p, q):
    """ReTr's any-anchor claim, exhaustively, on grids beyond the paper's."""
    an = ConflictAnalyzer(p, q)
    for kind in (PatternKind.RECTANGLE, PatternKind.TRANSPOSED_RECTANGLE):
        assert an.domain(Scheme.ReTr, kind).label == "any", (p, q, kind)


@pytest.mark.parametrize("p,q", [(3, 5), (5, 3), (3, 9)])
def test_non_power_of_two_grids(p, q):
    """Odd lane grids are legal for the four classic schemes; the gcd
    side-conditions govern the diagonals."""
    an = ConflictAnalyzer(p, q)
    tab = an.table(schemes=[Scheme.ReO, Scheme.ReRo, Scheme.ReCo, Scheme.RoCo])
    assert tab[Scheme.ReRo][PatternKind.ROW].label == "any"
    assert tab[Scheme.ReCo][PatternKind.COLUMN].label == "any"
    main_ok = math.gcd(p, q + 1) == 1
    assert (
        tab[Scheme.ReRo][PatternKind.MAIN_DIAGONAL].label == "any"
    ) == main_ok


@pytest.mark.parametrize("p,q", GRIDS)
def test_storage_bijection_on_grid(p, q):
    from repro.core.addressing import AddressingFunction
    from repro.core.schemes import flat_module_assignment

    rows, cols = 2 * p, 2 * q
    a = AddressingFunction(rows, cols, p, q)
    ii, jj = np.mgrid[0:rows, 0:cols]
    for scheme in Scheme:
        if scheme is Scheme.ReTr and (p % q and q % p):
            continue
        banks = flat_module_assignment(scheme, ii, jj, p, q)
        keys = banks.ravel() * a.bank_depth + a(ii, jj).ravel()
        assert len(np.unique(keys)) == rows * cols, scheme


@pytest.mark.parametrize("p,q", [(2, 4), (4, 8)])
def test_all_patterns_roundtrip_on_grid(p, q):
    """Write-then-read through every supported any-anchor pattern on the
    grid, against a reference matrix."""
    from repro.core.config import PolyMemConfig
    from repro.core.polymem import PolyMem

    n = p * q
    rows, cols = 4 * n, 4 * n
    for scheme in Scheme:
        cfg = PolyMemConfig(
            rows * cols * 8, p=p, q=q, scheme=scheme, rows=rows, cols=cols
        )
        pm = PolyMem(cfg)
        m = np.arange(rows * cols, dtype=np.uint64).reshape(rows, cols)
        pm.load(m)
        spec = SCHEME_SPECS[scheme]
        for entry in spec.supported:
            if not entry.condition_holds(p, q):
                continue
            if entry.anchor_constraint != "any":
                continue
            pat = AccessPattern(entry.kind, p, q)
            h, w = pat.shape
            i = 1 if h < rows else 0
            j = (w - 1) + 1 if entry.kind is PatternKind.ANTI_DIAGONAL else 1
            ii, jj = pat.coordinates(i, j)
            assert (pm.read(entry.kind, i, j) == m[ii, jj]).all(), (
                scheme,
                entry.kind,
            )
