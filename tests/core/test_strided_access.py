"""Tests for strided (sparse) parallel accesses — paper §VII's sparse
pattern claim."""

import math

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.conflict import is_conflict_free
from repro.core.exceptions import ConflictError, PatternError
from repro.core.patterns import AccessPattern, PatternKind, pattern_offsets
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


@pytest.fixture
def pm():
    mem = PolyMem(PolyMemConfig(8 * KB, p=2, q=4, scheme=Scheme.ReRo))
    m = np.arange(mem.rows * mem.cols, dtype=np.uint64).reshape(mem.rows, mem.cols)
    mem.load(m)
    return mem, m


class TestStridedPatterns:
    def test_offsets_dilated(self):
        _, dj = pattern_offsets(PatternKind.ROW, 2, 4, stride=3)
        assert dj.tolist() == [0, 3, 6, 9, 12, 15, 18, 21]

    def test_strided_rectangle_shape(self):
        pat = AccessPattern(PatternKind.RECTANGLE, 2, 4, stride=2)
        assert pat.shape == (3, 7)

    def test_stride_validation(self):
        with pytest.raises(PatternError):
            pattern_offsets(PatternKind.ROW, 2, 4, stride=0)
        with pytest.raises(PatternError):
            AccessPattern(PatternKind.ROW, 2, 4, stride=-1)

    def test_stride_one_is_default(self):
        a, b = pattern_offsets(PatternKind.ROW, 2, 4)
        c, d = pattern_offsets(PatternKind.ROW, 2, 4, stride=1)
        assert (a == c).all() and (b == d).all()


class TestStridedConflictFreedom:
    @pytest.mark.parametrize("stride", [1, 3, 5, 7, 9])
    def test_coprime_strided_rows_free_under_rero(self, stride):
        """Row accesses with gcd(stride, q) = 1 stay conflict-free."""
        assert math.gcd(stride, 4) == 1
        for i in range(4):
            for j in range(4):
                assert is_conflict_free(
                    Scheme.ReRo, PatternKind.ROW, i, j, 2, 4, stride=stride
                )

    @pytest.mark.parametrize("stride", [2, 4, 6, 8])
    def test_even_strided_rows_conflict_under_rero(self, stride):
        assert not is_conflict_free(
            Scheme.ReRo, PatternKind.ROW, 0, 0, 2, 4, stride=stride
        )

    @pytest.mark.parametrize("stride", [3, 5])
    def test_strided_columns_under_reco(self, stride):
        assert is_conflict_free(
            Scheme.ReCo, PatternKind.COLUMN, 0, 0, 2, 4, stride=stride
        )

    def test_even_strided_columns_conflict_under_reco(self):
        assert not is_conflict_free(
            Scheme.ReCo, PatternKind.COLUMN, 0, 0, 2, 4, stride=2
        )

    def test_strided_rectangle_under_reo(self):
        """An odd-stride dilated block keeps the residues distinct."""
        assert is_conflict_free(
            Scheme.ReO, PatternKind.RECTANGLE, 0, 0, 2, 4, stride=3
        )
        assert not is_conflict_free(
            Scheme.ReO, PatternKind.RECTANGLE, 0, 0, 2, 4, stride=2
        )


class TestStridedMemoryAccess:
    def test_strided_row_read(self, pm):
        mem, m = pm
        got = mem.read(PatternKind.ROW, 2, 1, stride=3)
        assert (got == m[2, 1 : 1 + 24 : 3]).all()

    def test_strided_row_write(self, pm):
        mem, m = pm
        mem.write(PatternKind.ROW, 0, 0, np.arange(8), stride=3)
        assert (mem.dump()[0, 0:24:3] == np.arange(8)).all()
        # untouched elements keep their values
        assert mem.dump()[0, 1] == m[0, 1]

    def test_conflicting_stride_rejected(self, pm):
        mem, _ = pm
        with pytest.raises(ConflictError, match="stride-4"):
            mem.read(PatternKind.ROW, 0, 0, stride=4)

    def test_strided_batch(self, pm):
        mem, m = pm
        out = mem.read_batch(
            PatternKind.ROW, np.arange(4), np.zeros(4, int), stride=3
        )
        for r in range(4):
            assert (out[r] == m[r, 0:24:3]).all()

    def test_strided_bounds_checked(self, pm):
        mem, _ = pm
        from repro.core.exceptions import AddressError

        with pytest.raises(AddressError):
            mem.read(PatternKind.ROW, 0, mem.cols - 10, stride=3)

    def test_strided_diagonal(self):
        """A stride-3 main diagonal under ReRo (subsampled wavefront)."""
        mem = PolyMem(
            PolyMemConfig(8 * KB, p=2, q=4, scheme=Scheme.ReRo, rows=32, cols=32)
        )
        m = np.arange(32 * 32, dtype=np.uint64).reshape(32, 32)
        mem.load(m)
        if is_conflict_free(Scheme.ReRo, PatternKind.MAIN_DIAGONAL, 0, 0, 2, 4, 3):
            got = mem.read(PatternKind.MAIN_DIAGONAL, 0, 0, stride=3)
            idx = np.arange(8) * 3
            assert (got == m[idx, idx]).all()

    def test_stride_request_str(self):
        from repro.core.agu import AccessRequest

        assert str(AccessRequest(PatternKind.ROW, 1, 2, stride=3)) == "row@(1,2)/s3"
