"""Tests for region free/reallocation (the swap-in/swap-out workflow)."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import CapacityError, PatternError
from repro.core.polymem import PolyMem
from repro.core.regions import RegionMap


@pytest.fixture
def rm():
    return RegionMap(PolyMem(PolyMemConfig(4 * KB, p=2, q=4)))


class TestFree:
    def test_freed_slot_is_reused(self, rm):
        a = rm.allocate("a", 4, 8)
        rm.allocate("b", 4, 8)
        rm.free("a")
        c = rm.allocate("c", 4, 8)
        assert (c.origin_i, c.origin_j) == (a.origin_i, a.origin_j)
        assert rm.overlaps() == []

    def test_smaller_region_fits_freed_slot(self, rm):
        a = rm.allocate("a", 6, 16)
        rm.free("a")
        c = rm.allocate("c", 2, 4)
        assert (c.origin_i, c.origin_j) == (a.origin_i, a.origin_j)
        # remainder strips stay usable
        d = rm.allocate("d", 2, 8)
        assert rm.overlaps() == []

    def test_free_unknown_raises(self, rm):
        with pytest.raises(PatternError, match="not allocated"):
            rm.free("ghost")

    def test_name_reusable_after_free(self, rm):
        rm.allocate("x", 2, 4)
        rm.free("x")
        rm.allocate("x", 2, 4)
        assert "x" in rm

    def test_churn_never_overlaps(self, rm):
        """Allocate/free churn keeps the invariant."""
        rng = np.random.default_rng(0)
        alive = []
        for k in range(60):
            if alive and rng.random() < 0.4:
                name = alive.pop(rng.integers(len(alive)))
                rm.free(name)
            else:
                name = f"r{k}"
                try:
                    rm.allocate(
                        name,
                        int(rng.integers(1, 6)),
                        int(rng.integers(1, 12)),
                    )
                    alive.append(name)
                except CapacityError:
                    continue
            assert rm.overlaps() == []

    def test_data_isolation_after_reuse(self, rm):
        a = rm.allocate("a", 4, 8)
        keep = rm.allocate("keep", 4, 8)
        keep.store(np.full((4, 8), 7, dtype=np.uint64))
        rm.free("a")
        c = rm.allocate("c", 4, 8)
        c.store(np.full((4, 8), 9, dtype=np.uint64))
        assert (keep.load() == 7).all()
