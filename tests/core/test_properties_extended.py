"""Hypothesis property tests, round two: regions, reconfiguration, LMem,
schedule covers, and the alignment-constrained schemes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PolyMemConfig
from repro.core.conflict import is_conflict_free
from repro.core.patterns import AccessPattern, PatternKind
from repro.core.polymem import PolyMem
from repro.core.regions import RegionMap
from repro.core.schemes import Scheme
from repro.maxeler.lmem import LMem
from repro.schedule import build_cover_problem, greedy_cover, random_trace, solve_cover


# -- regions ------------------------------------------------------------------


@st.composite
def region_requests(draw):
    n = draw(st.integers(1, 6))
    return [
        (
            f"r{k}",
            draw(st.integers(1, 6)),
            draw(st.integers(1, 16)),
        )
        for k in range(n)
    ]


@given(region_requests())
@settings(max_examples=50)
def test_region_allocation_never_overlaps(requests):
    from repro.core.exceptions import CapacityError

    pm = PolyMem(PolyMemConfig(4 * 1024, p=2, q=4, scheme=Scheme.ReRo))
    rm = RegionMap(pm)
    for name, rows, cols in requests:
        try:
            rm.allocate(name, rows, cols)
        except CapacityError:
            break
    assert rm.overlaps() == []
    for region in rm.regions.values():
        assert region.origin_i % 2 == 0 and region.origin_j % 4 == 0
        assert region.origin_i + region.rows <= pm.rows
        assert region.origin_j + region.cols <= pm.cols


@given(st.integers(0, 2**32), st.integers(0, 2**32))
@settings(max_examples=25)
def test_region_isolation(seed_a, seed_b):
    """Writing one region never disturbs another."""
    pm = PolyMem(PolyMemConfig(4 * 1024, p=2, q=4, scheme=Scheme.ReRo))
    rm = RegionMap(pm)
    a = rm.allocate("a", 4, 8)
    b = rm.allocate("b", 4, 8)
    data_a = (np.arange(32, dtype=np.uint64) + seed_a).reshape(4, 8)
    data_b = (np.arange(32, dtype=np.uint64) + seed_b).reshape(4, 8)
    a.store(data_a)
    b.store(data_b)
    a.store(data_b)  # overwrite a again
    assert (b.load() == data_b).all()
    assert (a.load() == data_b).all()


# -- reconfiguration ------------------------------------------------------------


@given(
    st.lists(st.sampled_from(list(Scheme)), min_size=1, max_size=6),
    st.integers(0, 2**30),
)
@settings(max_examples=30, deadline=None)
def test_reconfiguration_chain_preserves_contents(schemes, seed):
    pm = PolyMem(PolyMemConfig(2 * 1024, p=2, q=4, scheme=Scheme.ReRo))
    m = (np.arange(pm.rows * pm.cols, dtype=np.uint64) * 2654435761 + seed).reshape(
        pm.rows, pm.cols
    )
    pm.load(m)
    for scheme in schemes:
        pm.reconfigure(scheme)
        assert pm.scheme is scheme
    assert (pm.dump() == m).all()


# -- alignment-constrained schemes ------------------------------------------------


@given(st.integers(0, 63), st.integers(0, 63))
def test_roco_rectangle_alignment_rule(i, j):
    """RoCo rectangles: conflict-free iff i % p == 0 or j % q == 0 (2x4)."""
    expected = (i % 2 == 0) or (j % 4 == 0)
    assert is_conflict_free(Scheme.RoCo, PatternKind.RECTANGLE, i, j, 2, 4) == expected


@given(st.integers(0, 63), st.integers(0, 63))
def test_retr_any_anchor_rule(i, j):
    for kind in (PatternKind.RECTANGLE, PatternKind.TRANSPOSED_RECTANGLE):
        assert is_conflict_free(Scheme.ReTr, kind, i, j, 2, 4)


# -- set covers -------------------------------------------------------------------


@given(st.integers(0, 1000), st.floats(0.15, 0.6))
@settings(max_examples=20, deadline=None)
def test_cover_solutions_are_valid_and_ordered(seed, density):
    trace = random_trace(8, 8, density=density, seed=seed)
    prob = build_cover_problem(trace, Scheme.ReRo, 2, 4)
    greedy = greedy_cover(prob)
    exact = solve_cover(prob, node_budget=50_000)
    for chosen in (greedy, list(exact.chosen)):
        covered = 0
        for k in chosen:
            covered |= prob.masks[k]
        assert covered == prob.universe
    assert exact.n_accesses <= len(greedy)
    # lower bound: can't do better than ceil(cells / lanes)
    assert exact.n_accesses >= -(-len(trace) // 8)


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_cover_candidates_are_conflict_free(seed):
    trace = random_trace(8, 8, density=0.3, seed=seed)
    prob = build_cover_problem(trace, Scheme.RoCo, 2, 4)
    for cand in prob.candidates:
        assert is_conflict_free(Scheme.RoCo, cand.kind, cand.i, cand.j, 2, 4)


# -- LMem ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2000),
            st.lists(st.integers(0, 2**50), min_size=1, max_size=40),
        ),
        max_size=12,
    )
)
@settings(max_examples=30)
def test_lmem_matches_reference_array(ops):
    lmem = LMem(capacity_bytes=4096 * 8)
    ref = np.zeros(4096, dtype=np.uint64)
    for addr, values in ops:
        data = np.array(values, dtype=np.uint64)
        if addr + data.size > 4096:
            continue
        lmem.write(addr, data)
        ref[addr : addr + data.size] = data
    got, _ = lmem.read(0, 4096)
    assert (got == ref).all()


# -- patterns: every pattern's cells are distinct --------------------------------------


@given(
    st.sampled_from(list(PatternKind)),
    st.integers(1, 4),
    st.integers(1, 8),
    st.integers(0, 100),
    st.integers(100, 200),
)
def test_pattern_cells_distinct(kind, p, q, i, j):
    pat = AccessPattern(kind, p, q)
    cells = pat.cover_cells(i, j)
    assert len(cells) == p * q
