"""Unit tests for PolyMemConfig validation and serialization."""

import pytest

from repro.core.config import KB, MB, PolyMemConfig
from repro.core.exceptions import CapacityError, ConfigurationError
from repro.core.schemes import Scheme


class TestValidation:
    def test_basic(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        assert cfg.lanes == 8
        assert cfg.word_bytes == 8
        assert cfg.total_words == 64 * KB
        assert cfg.bank_depth == 8 * KB

    def test_default_shape_divisibility(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        assert cfg.rows % 2 == 0 and cfg.cols % 4 == 0
        assert cfg.rows * cfg.cols == cfg.total_words

    def test_default_shape_near_square(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        assert 0.25 <= cfg.rows / cfg.cols <= 4

    def test_explicit_shape(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, rows=8, cols=64)
        assert (cfg.rows, cfg.cols) == (8, 64)

    def test_explicit_shape_capacity_mismatch(self):
        with pytest.raises(CapacityError):
            PolyMemConfig(4 * KB, p=2, q=4, rows=8, cols=32)

    def test_explicit_shape_divisibility(self):
        # a skinny but divisible shape is fine
        cfg = PolyMemConfig(4 * KB, p=2, q=4, rows=4, cols=128)
        assert (cfg.rows, cfg.cols) == (4, 128)
        # an indivisible shape is rejected
        with pytest.raises(ConfigurationError):
            PolyMemConfig(4 * KB, p=2, q=4, rows=7, cols=73)

    def test_one_sided_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            PolyMemConfig(4 * KB, p=2, q=4, rows=8)

    def test_negative_capacity(self):
        with pytest.raises(CapacityError):
            PolyMemConfig(-1, p=2, q=4)

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            PolyMemConfig(4 * KB, p=2, q=4, width_bits=63)

    def test_bad_ports(self):
        with pytest.raises(ConfigurationError):
            PolyMemConfig(4 * KB, p=2, q=4, read_ports=0)

    def test_retr_grid_check_runs(self):
        with pytest.raises(ConfigurationError):
            PolyMemConfig(4 * KB, p=3, q=5, scheme=Scheme.ReTr)

    def test_scheme_by_name(self):
        cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme="RoCo")
        assert cfg.scheme is Scheme.RoCo

    def test_capacity_not_word_multiple(self):
        with pytest.raises(CapacityError):
            PolyMemConfig(1001, p=2, q=4)


class TestDerived:
    def test_label(self):
        assert PolyMemConfig(512 * KB, p=2, q=4).label() == "512KB-8L-1R-ReRo"
        assert (
            PolyMemConfig(4 * MB, p=2, q=8, read_ports=2, scheme=Scheme.ReO).label()
            == "4MB-16L-2R-ReO"
        )

    def test_with_(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        cfg2 = cfg.with_(read_ports=3)
        assert cfg2.read_ports == 3 and cfg2.capacity_bytes == cfg.capacity_bytes
        cfg3 = cfg.with_(capacity_bytes=1 * MB)
        # shape re-derived for the new capacity
        assert cfg3.rows * cfg3.cols == cfg3.total_words

    def test_bank_bytes(self):
        cfg = PolyMemConfig(512 * KB, p=2, q=4)
        assert cfg.bank_bytes == 64 * KB


class TestSerialization:
    def test_roundtrip(self):
        cfg = PolyMemConfig(
            2 * MB, p=2, q=8, scheme=Scheme.ReTr, read_ports=3
        )
        assert PolyMemConfig.from_text(cfg.to_text()) == cfg

    def test_parse_with_comments_and_blank_lines(self):
        text = """
        # a comment
        capacity_bytes = 4096

        p = 2     # inline comment
        q = 4
        """
        cfg = PolyMemConfig.from_text(text)
        assert cfg.capacity_bytes == 4096 and cfg.scheme is Scheme.ReRo

    def test_missing_keys(self):
        with pytest.raises(ConfigurationError, match="missing"):
            PolyMemConfig.from_text("capacity_bytes = 4096")

    def test_malformed_line(self):
        with pytest.raises(ConfigurationError, match="line"):
            PolyMemConfig.from_text("capacity_bytes 4096")

    def test_bad_value(self):
        with pytest.raises(ConfigurationError):
            PolyMemConfig.from_text("capacity_bytes = many\np = 2\nq = 4")


class TestFromAny:
    """PolyMemConfig.from_any — the single config-construction surface."""

    def _cfg(self):
        return PolyMemConfig(512 * KB, p=2, q=8, scheme=Scheme.ReTr, read_ports=2)

    def test_dict_roundtrip(self):
        cfg = self._cfg()
        assert PolyMemConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_plain_json(self):
        import json

        assert json.loads(json.dumps(self._cfg().to_dict()))["scheme"] == "ReTr"

    def test_mapping_with_aliases(self):
        cfg = PolyMemConfig.from_any(
            {"capacity_kb": 512, "p": 2, "q": 8, "scheme": "ReTr", "ports": 2}
        )
        assert cfg == self._cfg()

    def test_mapping_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            PolyMemConfig.from_any({"capacity_kb": 4, "p": 2, "q": 4, "bogus": 1})

    def test_mapping_missing_key_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            PolyMemConfig.from_any({"p": 2, "q": 4})

    def test_config_passthrough_and_override(self):
        cfg = self._cfg()
        assert PolyMemConfig.from_any(cfg) is cfg
        assert PolyMemConfig.from_any(cfg, read_ports=4).read_ports == 4

    def test_text_config_file(self, tmp_path):
        path = tmp_path / "polymem.cfg"
        path.write_text(self._cfg().to_text())
        assert PolyMemConfig.from_any(path) == self._cfg()
        assert PolyMemConfig.from_any(str(path)) == self._cfg()

    def test_json_config_file(self, tmp_path):
        import json

        path = tmp_path / "polymem.json"
        path.write_text(json.dumps(self._cfg().to_dict()))
        assert PolyMemConfig.from_any(path) == self._cfg()

    def test_namespace(self):
        import argparse

        ns = argparse.Namespace(
            config=None, capacity_kb=512, p=2, q=8, scheme="ReTr", ports=2
        )
        assert PolyMemConfig.from_any(ns) == self._cfg()

    def test_namespace_config_file_wins(self, tmp_path):
        import argparse

        path = tmp_path / "polymem.cfg"
        path.write_text(self._cfg().to_text())
        ns = argparse.Namespace(config=str(path), capacity_kb=4, p=4, q=4)
        assert PolyMemConfig.from_any(ns) == self._cfg()

    def test_unusable_source_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot build"):
            PolyMemConfig.from_any(object())
