"""Replay's prefix-fallback under ``forbid``: mid-trace conflicts.

When a ``forbid``-policy trace conflicts at cycle ``t*``, ``replay`` must
re-issue the valid prefix and then raise exactly the serial error, leaving
memory, statistics and the cycle counter identical to stepping the trace
one cycle at a time.  The generators here force the *event-sort* write
path (a slot written twice disables the dense per-slot table), the
fallback the prefix logic is hardest to get right on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PolyMemConfig
from repro.core.exceptions import PolyMemError, SimulationError
from repro.core.patterns import PatternKind
from repro.core.plan import AccessTrace
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme

LANE_GRIDS = [(2, 2), (2, 4), (4, 2)]


def _memory(p, q, scheme, rows, cols, seed):
    cfg = PolyMemConfig(
        rows * cols * 8, p=p, q=q, scheme=scheme, rows=rows, cols=cols
    )
    pm = PolyMem(cfg, collision_policy="forbid")
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    return pm


def _run_serial(pm, trace):
    outs = {port: [] for port in trace.read_ports}
    err = None
    try:
        for t in range(trace.n):
            reads, write = trace.cycle_args(t)
            res = pm.step(reads=reads, write=write)
            for port in outs:
                outs[port].append(res[port])
    except PolyMemError as e:
        err = (type(e), str(e))
    return outs, err


def _run_replay(pm, trace):
    err = None
    outs = None
    try:
        outs = pm.replay(trace)
    except PolyMemError as e:
        err = (type(e), str(e))
    return outs, err


def _assert_same_state(a, b):
    assert a.cycles == b.cycles
    assert a.write_stats == b.write_stats
    assert a.read_stats == b.read_stats
    assert np.array_equal(a.dump(), b.dump())


@st.composite
def forbid_conflict_cases(draw):
    p, q = draw(st.sampled_from(LANE_GRIDS))
    scheme = draw(st.sampled_from(list(Scheme)))
    rows = cols = p * q * 4
    n = draw(st.integers(2, 10))
    t_star = draw(st.integers(0, n - 1))
    seed = draw(st.integers(0, 2**32))
    # the write hits tile (0, 0) every cycle: every slot is written n
    # times, so the dense per-slot table bails and replay takes the
    # event-sort path
    wi = np.zeros(n, dtype=np.int64)
    wj = np.zeros(n, dtype=np.int64)
    # reads touch the disjoint tile (p, 0) except at t*, where they mirror
    # the write anchors — the forbidden same-cycle collision
    ri = np.full(n, p, dtype=np.int64)
    rj = np.zeros(n, dtype=np.int64)
    ri[t_star] = 0
    rj[t_star] = 0
    values = np.random.default_rng(seed).integers(
        0, 2**63, size=(n, p * q), dtype=np.uint64
    )
    trace = (
        AccessTrace()
        .read(PatternKind.RECTANGLE, ri, rj, port=0)
        .write(PatternKind.RECTANGLE, wi, wj, values)
    )
    return (p, q, scheme, rows, cols, seed, t_star, trace)


class TestForbidPrefixFallback:
    @given(forbid_conflict_cases())
    @settings(max_examples=60, deadline=None)
    def test_mid_trace_conflict_matches_serial(self, case):
        p, q, scheme, rows, cols, seed, t_star, trace = case
        pm_serial = _memory(p, q, scheme, rows, cols, seed)
        pm_replay = _memory(p, q, scheme, rows, cols, seed)
        outs_s, err_s = _run_serial(pm_serial, trace)
        outs_r, err_r = _run_replay(pm_replay, trace)
        assert err_s is not None and err_s[0] is SimulationError
        assert "same-cycle read/write collision" in err_s[1]
        assert err_r == err_s
        # the error surfaced after exactly t* good cycles on both paths
        assert pm_replay.cycles == t_star
        _assert_same_state(pm_serial, pm_replay)

    @given(
        st.sampled_from(LANE_GRIDS),
        st.sampled_from(list(Scheme)),
        st.integers(2, 10),
        st.integers(0, 2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_event_path_without_conflict_matches_serial(
        self, grid, scheme, n, seed
    ):
        """Twice-written slots force the event path; with disjoint reads
        the whole trace must still replay bit-identically."""
        p, q = grid
        rows = cols = p * q * 4
        values = np.random.default_rng(seed).integers(
            0, 2**63, size=(n, p * q), dtype=np.uint64
        )
        trace = (
            AccessTrace()
            .read(
                PatternKind.RECTANGLE,
                np.full(n, p, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
                port=0,
            )
            .write(
                PatternKind.RECTANGLE,
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
                values,
            )
        )
        pm_serial = _memory(p, q, scheme, rows, cols, seed)
        pm_replay = _memory(p, q, scheme, rows, cols, seed)
        outs_s, err_s = _run_serial(pm_serial, trace)
        outs_r, err_r = _run_replay(pm_replay, trace)
        assert err_s is None and err_r is None
        for port, stacked in outs_r.items():
            assert np.array_equal(stacked, np.stack(outs_s[port]))
        _assert_same_state(pm_serial, pm_replay)
