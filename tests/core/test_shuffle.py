"""Unit tests for the shuffle networks (crossbars and Benes)."""

import numpy as np
import pytest

from repro.core.exceptions import PatternError, SimulationError
from repro.core.shuffle import (
    BenesNetwork,
    FullCrossbar,
    InverseShuffle,
    Shuffle,
    permutation_from_banks,
)


class TestPermutationFromBanks:
    def test_valid(self):
        perm = permutation_from_banks(np.array([2, 0, 1, 3]))
        assert perm.tolist() == [2, 0, 1, 3]

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError):
            permutation_from_banks(np.array([0, 0, 1, 2]))

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            permutation_from_banks(np.array([0, 1, 4, 2]))

    def test_2d_rejected(self):
        with pytest.raises(PatternError):
            permutation_from_banks(np.zeros((2, 2), int))


class TestShuffle:
    def test_scatter_semantics(self):
        sh = Shuffle(4)
        out = sh(np.array([10, 20, 30, 40]), np.array([2, 0, 3, 1]))
        # out[banks[k]] = in[k]
        assert out.tolist() == [20, 40, 10, 30]

    def test_inverse_gather_semantics(self):
        inv = InverseShuffle(4)
        out = inv(np.array([10, 20, 30, 40]), np.array([2, 0, 3, 1]))
        # out[k] = in[banks[k]]
        assert out.tolist() == [30, 10, 40, 20]

    def test_inverse_undoes_shuffle(self, rng):
        sh, inv = Shuffle(8), InverseShuffle(8)
        for _ in range(20):
            perm = rng.permutation(8)
            v = rng.integers(0, 100, 8)
            assert (inv(sh(v, perm), perm) == v).all()

    def test_batched(self, rng):
        sh = Shuffle(8)
        banks = np.stack([rng.permutation(8) for _ in range(5)])
        vals = rng.integers(0, 100, (5, 8))
        out = sh(vals, banks)
        for r in range(5):
            assert (out[r] == sh(vals[r], banks[r])).all()

    def test_batched_inverse(self, rng):
        sh, inv = Shuffle(8), InverseShuffle(8)
        banks = np.stack([rng.permutation(8) for _ in range(5)])
        vals = rng.integers(0, 100, (5, 8))
        assert (inv(sh(vals, banks), banks) == vals).all()

    def test_shape_mismatch(self):
        sh = Shuffle(4)
        with pytest.raises(PatternError):
            sh(np.zeros((2, 4)), np.zeros((3, 4), int))

    def test_conflicting_signal_rejected(self):
        sh = Shuffle(4)
        with pytest.raises(SimulationError):
            sh(np.arange(4), np.array([0, 0, 1, 2]))

    def test_bad_lanes(self):
        with pytest.raises(PatternError):
            Shuffle(0)


class TestFullCrossbar:
    def test_is_a_shuffle(self, rng):
        xb, sh = FullCrossbar(8), Shuffle(8)
        perm = rng.permutation(8)
        v = rng.integers(0, 100, 8)
        assert (xb(v, perm) == sh(v, perm)).all()

    def test_cost_quadratic(self):
        c8 = FullCrossbar(8).cost()
        c16 = FullCrossbar(16).cost()
        # n(n-1) growth: 16 lanes cost ~4.3x the 8-lane crossbar
        assert c16.lut_estimate / c8.lut_estimate == pytest.approx(
            (16 * 15) / (8 * 7), rel=1e-9
        )
        assert c8.stages == 1

    def test_width_scales_cost(self):
        assert FullCrossbar(8, 32).cost().lut_estimate * 2 == FullCrossbar(
            8, 64
        ).cost().lut_estimate


class TestBenesNetwork:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_equivalent_to_crossbar(self, n, rng):
        bn, sh = BenesNetwork(n), Shuffle(n)
        for _ in range(10):
            perm = rng.permutation(n)
            v = rng.integers(0, 10_000, n)
            assert (bn(v, perm) == sh(v, perm)).all()

    def test_identity_and_reversal(self):
        bn = BenesNetwork(8)
        v = np.arange(8)
        assert (bn(v, np.arange(8)) == v).all()
        rev = np.arange(8)[::-1]
        out = np.empty(8, int)
        out[rev] = v
        assert (bn(v, rev) == out).all()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(PatternError):
            BenesNetwork(6)

    @pytest.mark.parametrize("n,stages", [(2, 1), (4, 3), (8, 5), (16, 7)])
    def test_stage_count(self, n, stages):
        assert BenesNetwork(n).num_stages == stages
        assert len(BenesNetwork(n).route(np.arange(n))) == stages

    def test_cost_subquadratic(self):
        b = BenesNetwork(64).cost()
        x = FullCrossbar(64).cost()
        assert b.lut_estimate < x.lut_estimate
        assert b.stages > x.stages  # latency trade-off

    def test_exhaustive_n4(self):
        """All 24 permutations of a 4-lane network route correctly."""
        import itertools

        bn, sh = BenesNetwork(4), Shuffle(4)
        v = np.array([10, 20, 30, 40])
        for perm in itertools.permutations(range(4)):
            perm = np.array(perm)
            assert (bn(v, perm) == sh(v, perm)).all(), perm

    def test_batch_falls_back_to_direct(self, rng):
        bn = BenesNetwork(4)
        banks = np.stack([rng.permutation(4) for _ in range(3)])
        vals = rng.integers(0, 100, (3, 4))
        assert (bn(vals, banks) == Shuffle(4)(vals, banks)).all()

    def test_route_memoized_per_permutation(self, rng):
        """Repeat routes hit the process-wide memo and stay correct."""
        from repro.core.shuffle import route_memo

        route_memo.clear()
        bn = BenesNetwork(8)
        perm = rng.permutation(8)
        first = bn.route(perm)
        assert len(route_memo) == 1
        second = bn.route(perm.copy())  # different array, same bytes key
        assert len(route_memo) == 1
        assert route_memo.hits == 1 and route_memo.misses == 1
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        v = rng.integers(0, 100, 8)
        assert (bn.apply_route(v, second) == Shuffle(8)(v, perm)).all()
        bn.route(rng.permutation(8))
        assert len(route_memo) == 2

    def test_route_memo_shared_across_instances(self, rng):
        """Two networks of the same width share routes (the property the
        exec runtime's fork-after-warm relies on)."""
        from repro.core.shuffle import route_memo

        route_memo.clear()
        perm = rng.permutation(8)
        a, b = BenesNetwork(8), BenesNetwork(8)
        a.route(perm)
        misses_after_first = route_memo.misses
        stages = b.route(perm)
        assert route_memo.misses == misses_after_first  # b reused a's route
        v = rng.integers(0, 100, 8)
        assert (b.apply_route(v, stages) == Shuffle(8)(v, perm)).all()
        # different widths never collide, even for equal permutations
        BenesNetwork(4).route(np.arange(4)[::-1].copy())
        assert len(route_memo) == 2
