"""Tests for same-cycle read/write collision policies (BRAM port modes)."""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


def make(policy):
    pm = PolyMem(
        PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo),
        collision_policy=policy,
    )
    m = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
    pm.load(m)
    return pm, m


def colliding_step(pm):
    """Read and write the same row in one cycle."""
    return pm.step(
        reads=[(0, AccessRequest(PatternKind.ROW, 0, 0))],
        write=(AccessRequest(PatternKind.ROW, 0, 0), np.full(8, 99, np.uint64)),
    )


class TestPolicies:
    def test_read_first_returns_old_data(self):
        pm, m = make("read_first")
        out = colliding_step(pm)
        assert (out[0] == m[0, :8]).all()
        assert (pm.read(PatternKind.ROW, 0, 0) == 99).all()

    def test_write_first_forwards_new_data(self):
        pm, _ = make("write_first")
        out = colliding_step(pm)
        assert (out[0] == 99).all()

    def test_write_first_partial_overlap(self):
        """Only the colliding slots are forwarded."""
        pm, m = make("write_first")
        out = pm.step(
            reads=[(0, AccessRequest(PatternKind.ROW, 0, 0))],
            write=(
                AccessRequest(PatternKind.ROW, 0, 4),
                np.full(8, 7, np.uint64),
            ),
        )
        assert (out[0][:4] == m[0, :4]).all()   # disjoint: old data
        assert (out[0][4:] == 7).all()           # overlap: forwarded

    def test_forbid_raises_on_hazard(self):
        pm, _ = make("forbid")
        with pytest.raises(SimulationError, match="collision"):
            colliding_step(pm)

    def test_forbid_allows_disjoint_access(self):
        pm, m = make("forbid")
        out = pm.step(
            reads=[(0, AccessRequest(PatternKind.ROW, 2, 0))],
            write=(AccessRequest(PatternKind.ROW, 3, 0), np.zeros(8, np.uint64)),
        )
        assert (out[0] == m[2, :8]).all()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PolyMem(
                PolyMemConfig(4 * KB, p=2, q=4), collision_policy="quantum"
            )

    def test_default_is_read_first(self):
        pm, _ = make("read_first")
        assert PolyMem(PolyMemConfig(4 * KB, p=2, q=4)).collision_policy == (
            pm.collision_policy
        )

    def test_policies_agree_without_collisions(self):
        """Disjoint traffic is policy-independent."""
        outs = []
        for policy in PolyMem.COLLISION_POLICIES:
            pm, _ = make(policy)
            out = pm.step(
                reads=[(0, AccessRequest(PatternKind.ROW, 1, 0))],
                write=(
                    AccessRequest(PatternKind.ROW, 5, 0),
                    np.arange(8, dtype=np.uint64),
                ),
            )
            outs.append(out[0])
        assert (outs[0] == outs[1]).all() and (outs[1] == outs[2]).all()
