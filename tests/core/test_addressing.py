"""Unit tests for the intra-bank addressing function A."""

import numpy as np
import pytest

from repro.core.addressing import AddressingFunction
from repro.core.exceptions import AddressError, ConfigurationError
from repro.core.schemes import Scheme, flat_module_assignment


class TestConstruction:
    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            AddressingFunction(rows=9, cols=8, p=2, q=4)
        with pytest.raises(ConfigurationError):
            AddressingFunction(rows=8, cols=9, p=2, q=4)

    def test_positive_dims(self):
        with pytest.raises(ConfigurationError):
            AddressingFunction(rows=0, cols=8, p=2, q=4)
        with pytest.raises(ConfigurationError):
            AddressingFunction(rows=8, cols=8, p=0, q=4)

    def test_bank_depth(self):
        a = AddressingFunction(rows=8, cols=16, p=2, q=4)
        assert a.bank_depth == 4 * 4
        assert a.blocks_per_row == 4


class TestAddressComputation:
    def test_scalar(self):
        a = AddressingFunction(rows=8, cols=16, p=2, q=4)
        assert a(0, 0) == 0
        assert a(0, 4) == 1       # next column block
        assert a(2, 0) == 4       # next row block: cols/q = 4
        assert a(7, 15) == 3 * 4 + 3

    def test_vectorized_matches_scalar(self):
        a = AddressingFunction(rows=8, cols=16, p=2, q=4)
        ii, jj = np.mgrid[0:8, 0:16]
        addrs = a(ii, jj)
        for i in range(8):
            for j in range(16):
                assert addrs[i, j] == a(i, j)

    def test_out_of_range(self):
        a = AddressingFunction(rows=8, cols=16, p=2, q=4)
        with pytest.raises(AddressError):
            a(8, 0)
        with pytest.raises(AddressError):
            a(0, 16)
        with pytest.raises(AddressError):
            a(-1, 0)

    def test_address_range(self):
        a = AddressingFunction(rows=8, cols=16, p=2, q=4)
        ii, jj = np.mgrid[0:8, 0:16]
        addrs = a(ii, jj)
        assert addrs.min() == 0 and addrs.max() == a.bank_depth - 1


class TestInjectivityPerBank:
    """(bank, address) is unique per element — the storage soundness
    invariant — for every scheme."""

    @pytest.mark.parametrize("scheme", list(Scheme))
    @pytest.mark.parametrize("p,q", [(2, 4), (2, 8), (4, 2)])
    def test_bank_address_pairs_unique(self, scheme, p, q):
        if scheme is Scheme.ReTr and (q % p and p % q):
            pytest.skip("invalid ReTr grid")
        rows, cols = 4 * p, 4 * q
        a = AddressingFunction(rows, cols, p, q)
        ii, jj = np.mgrid[0:rows, 0:cols]
        banks = flat_module_assignment(scheme, ii, jj, p, q)
        addrs = a(ii, jj)
        keys = banks.ravel() * a.bank_depth + addrs.ravel()
        assert len(np.unique(keys)) == rows * cols

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_every_slot_used(self, scheme):
        """The mapping is a bijection onto banks x depth (no holes)."""
        p, q = 2, 4
        rows, cols = 4 * p, 4 * q
        a = AddressingFunction(rows, cols, p, q)
        ii, jj = np.mgrid[0:rows, 0:cols]
        banks = flat_module_assignment(scheme, ii, jj, p, q)
        addrs = a(ii, jj)
        keys = set((banks.ravel() * a.bank_depth + addrs.ravel()).tolist())
        assert keys == set(range(p * q * a.bank_depth))


class TestInverse:
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_inverse_roundtrip(self, scheme):
        p, q = 2, 4
        rows, cols = 2 * p, 2 * q
        a = AddressingFunction(rows, cols, p, q)
        from repro.core.schemes import module_assignment

        for i in range(rows):
            for j in range(cols):
                mv, mh = module_assignment(scheme, i, j, p, q)
                addr = a(i, j)
                assert a.inverse(mv, mh, addr, scheme) == (i, j)
