"""Unit tests for the Address Generation Unit."""

import numpy as np
import pytest

from repro.core.agu import AGU, AccessRequest
from repro.core.exceptions import AddressError, PatternError
from repro.core.patterns import PatternKind


@pytest.fixture
def agu():
    return AGU(rows=16, cols=32, p=2, q=4)


class TestExpand:
    def test_rectangle(self, agu):
        ii, jj = agu.expand(AccessRequest(PatternKind.RECTANGLE, 2, 3))
        assert ii.tolist() == [2, 2, 2, 2, 3, 3, 3, 3]
        assert jj.tolist() == [3, 4, 5, 6, 3, 4, 5, 6]

    def test_row(self, agu):
        ii, jj = agu.expand(AccessRequest(PatternKind.ROW, 5, 10))
        assert (ii == 5).all()
        assert jj.tolist() == list(range(10, 18))

    def test_out_of_bounds_right(self, agu):
        with pytest.raises(AddressError):
            agu.expand(AccessRequest(PatternKind.ROW, 0, 25))

    def test_out_of_bounds_bottom(self, agu):
        with pytest.raises(AddressError):
            agu.expand(AccessRequest(PatternKind.COLUMN, 9, 0))

    def test_out_of_bounds_negative(self, agu):
        with pytest.raises(AddressError):
            agu.expand(AccessRequest(PatternKind.RECTANGLE, -1, 0))

    def test_anti_diagonal_needs_left_room(self, agu):
        ii, jj = agu.expand(AccessRequest(PatternKind.ANTI_DIAGONAL, 0, 7))
        assert jj.min() == 0
        with pytest.raises(AddressError):
            agu.expand(AccessRequest(PatternKind.ANTI_DIAGONAL, 0, 6))

    def test_lane_order_is_canonical(self, agu):
        """Lane k serves offset k of the pattern — the order DataIn/DataOut
        use (left-to-right, top-to-bottom)."""
        req = AccessRequest(PatternKind.RECTANGLE, 0, 0)
        ii, jj = agu.expand(req)
        flat = ii * 32 + jj
        assert flat.tolist() == sorted(flat.tolist())


class TestExpandMany:
    def test_batch_shape(self, agu):
        ii, jj = agu.expand_many(PatternKind.ROW, np.arange(4), np.zeros(4, int))
        assert ii.shape == jj.shape == (4, 8)

    def test_batch_matches_single(self, agu):
        anchors_i = np.array([0, 3, 7])
        anchors_j = np.array([1, 2, 3])
        ii, jj = agu.expand_many(PatternKind.RECTANGLE, anchors_i, anchors_j)
        for k, (ai, aj) in enumerate(zip(anchors_i, anchors_j)):
            si, sj = agu.expand(AccessRequest(PatternKind.RECTANGLE, ai, aj))
            assert (ii[k] == si).all() and (jj[k] == sj).all()

    def test_batch_bounds_checked(self, agu):
        with pytest.raises(AddressError):
            agu.expand_many(PatternKind.ROW, np.array([0]), np.array([30]))

    def test_mismatched_anchor_arrays(self, agu):
        with pytest.raises(PatternError):
            agu.expand_many(PatternKind.ROW, np.arange(3), np.arange(4))

    def test_empty_batch(self, agu):
        ii, jj = agu.expand_many(PatternKind.ROW, np.array([], int), np.array([], int))
        assert ii.shape == (0, 8)


def test_access_request_str():
    assert str(AccessRequest(PatternKind.ROW, 1, 2)) == "row@(1,2)"


def test_agu_pattern_helper(agu):
    pat = agu.pattern(PatternKind.COLUMN)
    assert pat.lanes == 8 and pat.shape == (8, 1)
