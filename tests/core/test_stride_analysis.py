"""Tests for stride-domain analysis (sparse access characterization)."""

import math

import pytest

from repro.core.conflict import ConflictAnalyzer
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme


@pytest.fixture(scope="module")
def analyzer():
    return ConflictAnalyzer(2, 4)


class TestStrideDomain:
    def test_stride_one_matches_plain_domain(self, analyzer):
        plain = analyzer.domain(Scheme.ReRo, PatternKind.ROW)
        strided = analyzer.stride_domain(Scheme.ReRo, PatternKind.ROW, 1)
        assert plain.ok_residues == strided.ok_residues

    def test_rero_row_stride_rule(self, analyzer):
        """Rows stay conflict-free exactly when gcd(stride, q) == 1."""
        table = analyzer.stride_table(Scheme.ReRo, PatternKind.ROW, range(1, 9))
        for stride, label in table.items():
            if math.gcd(stride, 4) == 1:
                assert label == "any", stride
            else:
                assert label == "none", stride

    def test_reco_column_stride_rule(self, analyzer):
        table = analyzer.stride_table(Scheme.ReCo, PatternKind.COLUMN, range(1, 9))
        for stride, label in table.items():
            if math.gcd(stride, 4) == 1:
                assert label == "any", stride

    def test_reo_rectangle_strides(self, analyzer):
        """Dilated blocks under ReO: need gcd(stride, p) == gcd(stride, q) == 1."""
        table = analyzer.stride_table(
            Scheme.ReO, PatternKind.RECTANGLE, range(1, 7)
        )
        assert table[1] == "any"
        assert table[3] == "any"
        assert table[5] == "any"
        assert table[2] == "none"
        assert table[4] == "none"

    def test_anti_diagonal_stride_window_safe(self, analyzer):
        """The anti-diagonal's stride-scaled window must not go negative
        (regression guard for the analysis window shift)."""
        dom = analyzer.stride_domain(Scheme.ReRo, PatternKind.ANTI_DIAGONAL, 3)
        assert dom.label in ("any", "none", "partial")

    def test_stride_table_keys(self, analyzer):
        table = analyzer.stride_table(
            Scheme.ReRo, PatternKind.ROW, strides=(1, 2, 3)
        )
        assert set(table) == {1, 2, 3}
