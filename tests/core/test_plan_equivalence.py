"""Property suite: compiled plans and batched replay vs serial ``step()``.

The access-plan compiler (``repro.core.plan``) and the replay engine
(``PolyMem.replay``) both claim *bit-identical* behaviour to the
architectural per-access path — results, memory state, cycle/port
statistics, and error behaviour (type and message) included.  This suite
drives randomized traces through both paths across all five schemes, all
pattern kinds, strides, read-port counts and collision policies, with
deliberately invalid anchors and same-cycle collisions mixed in.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import AddressingFunction
from repro.core.config import PolyMemConfig
from repro.core.exceptions import PolyMemError
from repro.core.patterns import PatternKind, pattern_offsets
from repro.core.plan import AccessTrace, compile_plan
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme, flat_module_assignment

LANE_GRIDS = [(2, 2), (2, 4), (4, 2), (4, 4)]


def _memory(p, q, scheme, rows, cols, policy, read_ports, seed):
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=p,
        q=q,
        scheme=scheme,
        rows=rows,
        cols=cols,
        read_ports=read_ports,
    )
    pm = PolyMem(cfg, collision_policy=policy)
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    return pm


def _run_serial(pm, trace):
    """Issue the trace one ``step()`` per cycle; collect results or error."""
    outs = {port: [] for port in trace.read_ports}
    err = None
    try:
        for t in range(trace.n):
            reads, write = trace.cycle_args(t)
            res = pm.step(reads=reads, write=write)
            for port in outs:
                outs[port].append(res[port])
    except PolyMemError as e:
        err = (type(e), str(e))
    return outs, err


def _run_replay(pm, trace):
    err = None
    outs = None
    try:
        outs = pm.replay(trace)
    except PolyMemError as e:
        err = (type(e), str(e))
    return outs, err


def _assert_same_state(pm_a, pm_b):
    assert pm_a.cycles == pm_b.cycles
    assert pm_a.write_stats == pm_b.write_stats
    assert pm_a.read_stats == pm_b.read_stats
    assert np.array_equal(pm_a.dump(), pm_b.dump())


@st.composite
def trace_cases(draw):
    p, q = draw(st.sampled_from(LANE_GRIDS))
    scheme = draw(st.sampled_from(list(Scheme)))
    lanes = p * q
    rows = cols = lanes * 4
    stride = draw(st.sampled_from([1, 1, 1, 2, 3]))
    policy = draw(st.sampled_from(PolyMem.COLLISION_POLICIES))
    read_ports = draw(st.integers(1, 2))
    n = draw(st.integers(1, 10))
    anchors = st.lists(
        st.integers(-2, rows + 1), min_size=n, max_size=n
    )
    trace = AccessTrace()
    used_kinds = []
    for port in range(draw(st.integers(0, read_ports))):
        kind = draw(st.sampled_from(list(PatternKind)))
        used_kinds.append(kind)
        trace.read(kind, draw(anchors), draw(anchors), port=port, stride=stride)
    has_write = draw(st.booleans()) or not used_kinds
    if has_write:
        kind = draw(st.sampled_from(list(PatternKind)))
        used_kinds.append(kind)
        wi, wj = draw(anchors), draw(anchors)
        values = np.random.default_rng(draw(st.integers(0, 2**32))).integers(
            0, 2**63, size=(n, lanes), dtype=np.uint64
        )
        trace.write(kind, wi, wj, values, stride=stride)
        if trace.read_ports and draw(st.booleans()):
            # force same-cycle read/write collisions: mirror the write
            # anchors (and kind) into a fresh port-0 read stream
            forced = AccessTrace().read(kind, wi, wj, port=0, stride=stride)
            for port in trace.read_ports:
                if port != 0:
                    s = trace._reads[port]
                    forced.read(
                        s.kinds[0], s.anchors_i, s.anchors_j,
                        port=port, stride=s.stride,
                    )
            forced.write(kind, wi, wj, values, stride=stride)
            trace = forced
    seed = draw(st.integers(0, 2**32))
    return (p, q, scheme, rows, cols, policy, read_ports, seed, trace)


@settings(max_examples=120, deadline=None)
@given(trace_cases())
def test_replay_bit_identical_to_serial_step(case):
    """Replay == N serial steps: results, errors, state and statistics."""
    p, q, scheme, rows, cols, policy, read_ports, seed, trace = case
    pm_serial = _memory(p, q, scheme, rows, cols, policy, read_ports, seed)
    pm_replay = _memory(p, q, scheme, rows, cols, policy, read_ports, seed)
    serial_outs, serial_err = _run_serial(pm_serial, trace)
    replay_outs, replay_err = _run_replay(pm_replay, trace)
    assert serial_err == replay_err
    if serial_err is None:
        for port in trace.read_ports:
            assert np.array_equal(
                np.asarray(serial_outs[port]), replay_outs[port]
            )
    _assert_same_state(pm_serial, pm_replay)


@settings(max_examples=120, deadline=None)
@given(trace_cases())
def test_planned_step_bit_identical_to_unplanned(case):
    """The planned single-access path == the AGU/shuffle reference path."""
    p, q, scheme, rows, cols, policy, read_ports, seed, trace = case
    pm_plan = _memory(p, q, scheme, rows, cols, policy, read_ports, seed)
    pm_ref = _memory(p, q, scheme, rows, cols, policy, read_ports, seed)
    pm_ref.use_plans = False
    plan_outs, plan_err = _run_serial(pm_plan, trace)
    ref_outs, ref_err = _run_serial(pm_ref, trace)
    assert plan_err == ref_err
    for port in trace.read_ports:
        assert len(plan_outs[port]) == len(ref_outs[port])
        for a, b in zip(plan_outs[port], ref_outs[port]):
            assert np.array_equal(a, b)
    _assert_same_state(pm_plan, pm_ref)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(LANE_GRIDS),
    st.sampled_from(list(Scheme)),
    st.integers(0, 2**32),
    st.integers(2, 12),
)
def test_heterogeneous_kind_trace_matches_serial(grid, scheme, seed, n):
    """A per-cycle kind sequence replays like the equivalent step loop."""
    p, q = grid
    rows = cols = p * q * 4
    rng = np.random.default_rng(seed)
    kinds = [
        PatternKind(k)
        for k in rng.choice([k.value for k in PatternKind], size=n)
    ]
    ai = rng.integers(0, rows, size=n)
    aj = rng.integers(0, cols, size=n)
    trace = AccessTrace().read(kinds, ai, aj)
    pm_serial = _memory(p, q, scheme, rows, cols, "read_first", 1, seed)
    pm_replay = _memory(p, q, scheme, rows, cols, "read_first", 1, seed)
    serial_outs, serial_err = _run_serial(pm_serial, trace)
    replay_outs, replay_err = _run_replay(pm_replay, trace)
    assert serial_err == replay_err
    if serial_err is None:
        assert np.array_equal(np.asarray(serial_outs[0]), replay_outs[0])
    _assert_same_state(pm_serial, pm_replay)


# -- plan table correctness ----------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from(LANE_GRIDS),
    st.sampled_from(list(Scheme)),
    st.sampled_from(list(PatternKind)),
    st.sampled_from([1, 2, 3]),
    st.integers(0, 400),
    st.integers(0, 400),
)
def test_plan_tables_match_direct_derivation(grid, scheme, kind, stride, i, j):
    """Residue tables reproduce the MAF / addressing function exactly."""
    p, q = grid
    rows = cols = p * q * 8
    plan = compile_plan(rows, cols, p, q, scheme, kind, stride)
    di, dj = pattern_offsets(kind, p, q, stride)
    ii, jj = i + di, j + dj
    banks = flat_module_assignment(scheme, ii, jj, p, q)
    assert np.array_equal(plan.banks(i, j), banks)
    assert plan.conflict_free(i, j) == (np.unique(banks).size == banks.size)
    if plan.fits(i, j):
        assert (
            (ii >= 0).all() and (jj >= 0).all()
            and (ii < rows).all() and (jj < cols).all()
        )
        addressing = AddressingFunction(rows, cols, p, q)
        assert np.array_equal(plan.addrs(i, j), addressing(ii, jj))
    if plan.conflict_free(i, j):
        lob = plan.inverse_permutation(i, j)
        assert np.array_equal(np.asarray(banks)[lob], np.arange(p * q))


def test_compile_plan_is_cached_and_shared():
    a = compile_plan(16, 16, 2, 4, Scheme.ReRo, PatternKind.ROW, 1)
    b = compile_plan(16, 16, 2, 4, Scheme.ReRo, PatternKind.ROW, 1)
    assert a is b
    pm1 = PolyMem(PolyMemConfig(16 * 16 * 8, p=2, q=4, scheme=Scheme.ReRo,
                                rows=16, cols=16))
    pm2 = PolyMem(PolyMemConfig(16 * 16 * 8, p=2, q=4, scheme=Scheme.ReRo,
                                rows=16, cols=16))
    assert pm1.plan(PatternKind.ROW) is pm2.plan(PatternKind.ROW)
    # instance cache: second fetch is the same object
    assert pm1.plan(PatternKind.ROW) is pm1.plan(PatternKind.ROW)


def test_reconfigure_invalidates_instance_plan_cache():
    pm = PolyMem(PolyMemConfig(16 * 16 * 8, p=2, q=2, scheme=Scheme.ReRo,
                               rows=16, cols=16))
    before = pm.plan(PatternKind.ROW)
    assert before.scheme is Scheme.ReRo
    pm.reconfigure(Scheme.RoCo)
    after = pm.plan(PatternKind.ROW)
    assert after.scheme is Scheme.RoCo
    assert after is not before


def test_replay_rejects_bad_port_and_empty_trace_is_free():
    pm = PolyMem(PolyMemConfig(16 * 16 * 8, p=2, q=4, scheme=Scheme.ReRo,
                               rows=16, cols=16))
    import pytest

    from repro.core.exceptions import PortError

    with pytest.raises(PortError):
        pm.replay(AccessTrace().read(PatternKind.ROW, [0], [0], port=3))
    out = pm.replay(AccessTrace())
    assert out == {}
    assert pm.cycles == 0
