"""Tests for the batched access-plan table builder (compile_plan_batch).

The builder must produce plans bit-identical to scalar ``compile_plan``
(every table, every dtype), share the residue-table core across
geometries, and feed the shared LRU so later scalar callers get the
*same* objects without recompiling.
"""

import numpy as np
import pytest

from repro.core import plan as plan_mod
from repro.core.patterns import PatternKind
from repro.core.plan import compile_plan, compile_plan_batch, plan_cache_stats
from repro.core.schemes import Scheme

# geometries obscure enough that only this module compiles them
GEOMETRIES = [(48, 96), (96, 48), (144, 96)]
GRIDS = [(2, 4), (4, 2)]
KINDS = [PatternKind.RECTANGLE, PatternKind.ROW, PatternKind.COLUMN]

ARRAY_FIELDS = [
    "di", "dj", "bank_table", "lane_of_bank", "ok", "addr_delta",
    "slot_delta",
]
SCALAR_FIELDS = [
    "rows", "cols", "p", "q", "scheme", "kind", "stride", "i_lo", "i_hi",
    "j_lo", "j_hi", "period", "blocks_per_row", "bank_depth",
]


def _keys():
    return [
        (rows, cols, p, q, scheme, kind, 1)
        for rows, cols in GEOMETRIES
        for p, q in GRIDS
        for scheme in Scheme
        for kind in KINDS
    ]


def _assert_plan_equal(a, b):
    for f in SCALAR_FIELDS:
        assert getattr(a, f) == getattr(b, f), f
    for f in ARRAY_FIELDS:
        x, y = getattr(a, f), getattr(b, f)
        assert x.dtype == y.dtype, f
        assert x.shape == y.shape, f
        assert (x == y).all(), f


class TestCompilePlanBatch:
    def test_bit_identical_to_scalar(self):
        keys = _keys()
        batch = compile_plan_batch(keys)
        for key in keys:
            _assert_plan_equal(batch[key], compile_plan(*key))

    def test_scalar_callers_get_the_batch_built_object(self):
        key = (48, 96, 2, 4, Scheme.ReCo, PatternKind.ROW, 1)
        built = compile_plan_batch([key])[key]
        assert compile_plan(*key) is built

    def test_miss_accounting_counts_each_family_once(self):
        fresh = [
            (160, 96, 2, 4, scheme, kind, 1)
            for scheme in (Scheme.ReO, Scheme.RoCo)
            for kind in KINDS
        ]
        before = plan_cache_stats()["misses"]
        compile_plan_batch(fresh)
        after_batch = plan_cache_stats()["misses"]
        assert after_batch - before == len(fresh)
        # scalar re-requests are pure hits now
        for key in fresh:
            compile_plan(*key)
        assert plan_cache_stats()["misses"] == after_batch

    def test_duplicate_and_default_stride_keys(self):
        key6 = (48, 96, 2, 4, Scheme.ReRo, PatternKind.RECTANGLE)
        key7 = key6 + (1,)
        out = compile_plan_batch([key6, key7, key7])
        assert out[key7] is compile_plan(*key7)

    def test_tables_are_readonly(self):
        key = (96, 48, 4, 2, Scheme.ReTr, PatternKind.COLUMN, 1)
        built = compile_plan_batch([key])[key]
        for f in ("bank_table", "lane_of_bank", "ok", "slot_delta"):
            with pytest.raises(ValueError):
                getattr(built, f)[0] = 0

    def test_conflict_semantics_match(self, rng):
        """Spot-check the behavioural surface, not just the tables."""
        keys = _keys()[::5]
        batch = compile_plan_batch(keys)
        ai = rng.integers(0, 200, size=16)
        aj = rng.integers(0, 200, size=16)
        for key in keys:
            fresh = plan_mod.compile_plan.__wrapped__(*key)
            got = batch[key]
            assert (got.fits_mask(ai, aj) == fresh.fits_mask(ai, aj)).all()
            assert (got.ok_mask(ai % (got.period * 2), aj) ==
                    fresh.ok_mask(ai % (fresh.period * 2), aj)).all()

    def test_empty_input(self):
        assert compile_plan_batch([]) == {}
