"""Conflict-freedom tests: the exhaustive reproduction of paper Table I."""

import pytest

from repro.core.conflict import (
    ConflictAnalyzer,
    conflict_banks,
    is_conflict_free,
)
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme


class TestIsConflictFree:
    def test_reo_rectangle_everywhere(self):
        for i in range(8):
            for j in range(8):
                assert is_conflict_free(Scheme.ReO, PatternKind.RECTANGLE, i, j, 2, 4)

    def test_reo_row_conflicts(self):
        assert not is_conflict_free(Scheme.ReO, PatternKind.ROW, 0, 0, 2, 4)

    def test_conflict_banks_empty_when_free(self):
        assert conflict_banks(Scheme.ReRo, PatternKind.ROW, 3, 5, 2, 4) == []

    def test_conflict_banks_lists_clashes(self):
        clashes = conflict_banks(Scheme.ReO, PatternKind.ROW, 0, 0, 2, 4)
        assert clashes  # row hits bank row 0 only -> q banks hit p times
        assert all(0 <= b < 8 for b in clashes)

    def test_roco_rectangle_alignment(self):
        assert is_conflict_free(Scheme.RoCo, PatternKind.RECTANGLE, 0, 3, 2, 4)
        assert is_conflict_free(Scheme.RoCo, PatternKind.RECTANGLE, 2, 5, 2, 4)
        assert not is_conflict_free(Scheme.RoCo, PatternKind.RECTANGLE, 1, 2, 2, 4)

    def test_retr_both_rectangles_anywhere(self):
        for i in range(8):
            for j in range(8):
                assert is_conflict_free(
                    Scheme.ReTr, PatternKind.RECTANGLE, i, j, 2, 4
                )
                assert is_conflict_free(
                    Scheme.ReTr, PatternKind.TRANSPOSED_RECTANGLE, i, j, 2, 4
                )


class TestAnchorDomain:
    def test_any_domain_contains_everything(self):
        an = ConflictAnalyzer(2, 4)
        dom = an.domain(Scheme.ReRo, PatternKind.ROW)
        assert dom.label == "any"
        assert dom.fraction == 1.0
        assert dom.contains(123, 456)

    def test_i_aligned_domain(self):
        an = ConflictAnalyzer(2, 4)
        dom = an.domain(Scheme.RoCo, PatternKind.RECTANGLE)
        assert dom.label == "i_aligned"
        assert dom.contains(0, 3) and dom.contains(4, 1)
        # j-aligned anchors also happen to work for RoCo rectangles
        assert dom.contains(1, 0)
        assert not dom.contains(1, 2)

    def test_none_domain(self):
        an = ConflictAnalyzer(2, 4)
        dom = an.domain(Scheme.ReO, PatternKind.COLUMN)
        assert dom.label == "none"
        assert dom.fraction == 0.0

    def test_domain_periodic_membership(self):
        an = ConflictAnalyzer(2, 4)
        dom = an.domain(Scheme.RoCo, PatternKind.RECTANGLE)
        n = 8
        for i in range(n):
            for j in range(n):
                assert dom.contains(i, j) == dom.contains(i + 5 * n, j + 9 * n)


class TestTableI:
    """The paper's Table I, validated exhaustively per lane grid."""

    @pytest.mark.parametrize("p,q", [(2, 4), (2, 8)])
    def test_paper_lane_grids(self, p, q):
        an = ConflictAnalyzer(p, q)
        tab = an.table()
        labels = {
            (s, k): d.label for s, row in tab.items() for k, d in row.items()
        }
        R, T, Ro, C, M, A = (
            PatternKind.RECTANGLE,
            PatternKind.TRANSPOSED_RECTANGLE,
            PatternKind.ROW,
            PatternKind.COLUMN,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        )
        # ReO: Rectangle only
        assert labels[(Scheme.ReO, R)] == "any"
        assert labels[(Scheme.ReO, Ro)] == "none"
        assert labels[(Scheme.ReO, C)] == "none"
        # ReRo: Rectangle, Row, both diagonals
        assert labels[(Scheme.ReRo, R)] == "any"
        assert labels[(Scheme.ReRo, Ro)] == "any"
        assert labels[(Scheme.ReRo, M)] == "any"
        assert labels[(Scheme.ReRo, A)] == "any"
        assert labels[(Scheme.ReRo, C)] == "none"
        # ReCo: Rectangle, Column, both diagonals
        assert labels[(Scheme.ReCo, R)] == "any"
        assert labels[(Scheme.ReCo, C)] == "any"
        assert labels[(Scheme.ReCo, M)] == "any"
        assert labels[(Scheme.ReCo, A)] == "any"
        assert labels[(Scheme.ReCo, Ro)] == "none"
        # RoCo: Row, Column, Rectangle (row-aligned anchors)
        assert labels[(Scheme.RoCo, Ro)] == "any"
        assert labels[(Scheme.RoCo, C)] == "any"
        assert labels[(Scheme.RoCo, R)] == "i_aligned"
        # ReTr: Rectangle, Transposed Rectangle
        assert labels[(Scheme.ReTr, R)] == "any"
        assert labels[(Scheme.ReTr, T)] == "any"

    @pytest.mark.parametrize("p,q", [(2, 4), (2, 8), (4, 2), (4, 4)])
    def test_static_spec_agrees_with_empirical(self, p, q):
        an = ConflictAnalyzer(p, q)
        for scheme in an.table():
            assert an.verify_spec(scheme) == []

    def test_table_restricts_to_requested_schemes(self):
        an = ConflictAnalyzer(2, 4)
        tab = an.table(schemes=[Scheme.ReO], kinds=[PatternKind.RECTANGLE])
        assert list(tab) == [Scheme.ReO]
        assert list(tab[Scheme.ReO]) == [PatternKind.RECTANGLE]

    def test_retr_skipped_on_invalid_grid(self):
        an = ConflictAnalyzer(3, 5)
        assert Scheme.ReTr not in an.table()
