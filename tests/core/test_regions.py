"""Tests for the Fig. 2 regions API and the shelf allocator."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import AddressError, CapacityError, PatternError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.regions import RegionMap
from repro.core.schemes import Scheme


@pytest.fixture
def pm():
    return PolyMem(PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo))


@pytest.fixture
def rm(pm):
    return RegionMap(pm)


class TestAllocation:
    def test_origins_are_block_aligned(self, rm, pm):
        for k in range(4):
            r = rm.allocate(f"r{k}", 3, 5)
            assert r.origin_i % pm.p == 0
            assert r.origin_j % pm.q == 0
            # shapes rounded up to the lane grid
            assert r.rows % pm.p == 0 and r.cols % pm.q == 0

    def test_no_overlaps(self, rm):
        for k in range(6):
            rm.allocate(f"r{k}", 4, 8)
        assert rm.overlaps() == []

    def test_shelf_wraps(self, rm, pm):
        a = rm.allocate("a", 2, pm.cols)      # fills a full shelf
        b = rm.allocate("b", 2, 8)            # must start a new shelf
        assert b.origin_i >= a.origin_i + a.rows

    def test_duplicate_name(self, rm):
        rm.allocate("x", 2, 4)
        with pytest.raises(PatternError, match="already"):
            rm.allocate("x", 2, 4)

    def test_too_wide(self, rm, pm):
        with pytest.raises(CapacityError, match="wider"):
            rm.allocate("w", 2, pm.cols + 1)

    def test_exhaustion(self, rm, pm):
        with pytest.raises(CapacityError, match="exhausted"):
            for k in range(100):
                rm.allocate(f"r{k}", pm.p * 2, pm.cols)

    def test_lookup(self, rm):
        r = rm.allocate("a", 2, 4)
        assert rm["a"] is r
        assert "a" in rm and "b" not in rm

    def test_invalid_shape(self, rm):
        with pytest.raises(PatternError):
            rm.allocate("z", 0, 4)

    def test_free_rows_decreases(self, rm, pm):
        before = rm.free_rows()
        rm.allocate("a", 4, 8)
        assert rm.free_rows() < before


class TestRegionAccess:
    def test_store_load_roundtrip(self, rm):
        r = rm.allocate("m", 6, 12)
        data = np.arange(r.rows * r.cols, dtype=np.uint64).reshape(r.shape)
        r.store(data)
        assert (r.load() == data).all()

    def test_store_shape_check(self, rm):
        r = rm.allocate("m", 4, 8)
        with pytest.raises(PatternError):
            r.store(np.zeros((3, 3)))

    def test_relative_reads(self, rm):
        r = rm.allocate("m", 4, 16)
        data = np.arange(4 * 16, dtype=np.uint64).reshape(4, 16)
        r.store(data)
        assert (r.read(PatternKind.ROW, 2, 3) == data[2, 3:11]).all()
        got = r.read(PatternKind.RECTANGLE, 1, 5)
        assert (got == data[1:3, 5:9].ravel()).all()

    def test_relative_writes(self, rm):
        r = rm.allocate("m", 4, 16)
        r.store(np.zeros((4, 16), dtype=np.uint64))
        r.write(PatternKind.ROW, 0, 0, np.arange(8))
        assert (r.load()[0, :8] == np.arange(8)).all()

    def test_batch_reads(self, rm):
        r = rm.allocate("m", 4, 16)
        data = np.arange(4 * 16, dtype=np.uint64).reshape(4, 16)
        r.store(data)
        out = r.read_batch(PatternKind.ROW, np.arange(4), np.zeros(4, int))
        assert (out == data[:, :8]).all()

    def test_bounds_check(self, rm):
        r = rm.allocate("m", 4, 8)
        with pytest.raises(AddressError, match="region"):
            r.read(PatternKind.ROW, 4, 0)

    def test_regions_are_isolated(self, rm):
        a = rm.allocate("a", 4, 8)
        b = rm.allocate("b", 4, 8)
        a.store(np.full((4, 8), 1, dtype=np.uint64))
        b.store(np.full((4, 8), 2, dtype=np.uint64))
        assert (a.load() == 1).all()
        assert (b.load() == 2).all()

    def test_multiview_within_region(self, rm):
        """Fig. 2's point: the same region serves different shapes."""
        r = rm.allocate("m", 8, 8)
        data = np.arange(64, dtype=np.uint64).reshape(8, 8)
        r.store(data)
        diag = r.read(PatternKind.MAIN_DIAGONAL, 0, 0)
        assert (diag == data[np.arange(8), np.arange(8)]).all()
