"""Edge lane-grid geometries: 1xN, Nx1 and 1x1 grids must work end to end.

Degenerate grids are legal PolyMem configurations (a 1x8 grid is a plain
wide memory; 1x1 is a scalar memory) and exercise the MAF arithmetic's
boundary behaviour.
"""

import numpy as np
import pytest

from repro.core.config import PolyMemConfig
from repro.core.conflict import ConflictAnalyzer, is_conflict_free
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


def make(p, q, scheme, rows=8, cols=16):
    cfg = PolyMemConfig(
        rows * cols * 8, p=p, q=q, scheme=scheme, rows=rows, cols=cols
    )
    pm = PolyMem(cfg)
    m = np.arange(rows * cols, dtype=np.uint64).reshape(rows, cols)
    pm.load(m)
    return pm, m


class TestFlatGrid1xN:
    """p=1: one bank row; rows and rectangles coincide."""

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_load_dump(self, scheme):
        pm, m = make(1, 8, scheme)
        assert (pm.dump() == m).all()

    def test_row_reads(self):
        pm, m = make(1, 8, Scheme.ReRo)
        assert (pm.read(PatternKind.ROW, 3, 2) == m[3, 2:10]).all()
        # a 1x8 rectangle IS a row
        assert (pm.read(PatternKind.RECTANGLE, 3, 2) == m[3, 2:10]).all()

    def test_diagonals_on_flat_grid(self):
        # p=1: every diagonal is conflict-free iff the column residues are
        # (trivially gcd(1, *) == 1 row-wise; q governs)
        assert is_conflict_free(Scheme.ReRo, PatternKind.MAIN_DIAGONAL, 0, 0, 1, 8)

    def test_retr_on_flat_grid(self):
        pm, m = make(1, 8, Scheme.ReTr)
        got = pm.read(PatternKind.TRANSPOSED_RECTANGLE, 0, 5)
        assert (got == m[0:8, 5]).all()


class TestTallGridNx1:
    """q=1: one bank column; columns and rectangles coincide."""

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_load_dump(self, scheme):
        pm, m = make(8, 1, scheme)
        assert (pm.dump() == m).all()

    def test_column_reads(self):
        pm, m = make(8, 1, Scheme.ReCo)
        assert (pm.read(PatternKind.COLUMN, 0, 3) == m[0:8, 3]).all()
        assert (pm.read(PatternKind.RECTANGLE, 0, 3) == m[0:8, 3]).all()

    def test_retr_mirror_formula(self):
        pm, m = make(8, 1, Scheme.ReTr)
        got = pm.read(PatternKind.TRANSPOSED_RECTANGLE, 2, 4)
        assert (got == m[2, 4:12]).all()


class TestScalarGrid1x1:
    """p=q=1: a scalar memory; every pattern is a single element."""

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_every_pattern_reads_one_element(self, scheme):
        pm, m = make(1, 1, scheme)
        for kind in PatternKind:
            if kind is PatternKind.ANTI_DIAGONAL:
                got = pm.read(kind, 2, 3)
            else:
                got = pm.read(kind, 2, 3)
            assert got.shape == (1,)
            assert got[0] == m[2, 3]

    def test_analyzer_all_any(self):
        table = ConflictAnalyzer(1, 1).table()
        for scheme, row in table.items():
            for kind, dom in row.items():
                assert dom.label == "any", (scheme, kind)


class TestWideGrid4x8:
    """A 32-lane grid (the whatif module's 4x8) works through the stack."""

    def test_rero_rows(self):
        pm, m = make(4, 8, Scheme.ReRo, rows=8, cols=64)
        assert (pm.read(PatternKind.ROW, 1, 3) == m[1, 3:35]).all()

    def test_retr_both_orientations(self):
        pm, m = make(4, 8, Scheme.ReTr, rows=16, cols=32)
        assert (
            pm.read(PatternKind.RECTANGLE, 3, 5) == m[3:7, 5:13].ravel()
        ).all()
        assert (
            pm.read(PatternKind.TRANSPOSED_RECTANGLE, 3, 5)
            == m[3:11, 5:9].ravel()
        ).all()
