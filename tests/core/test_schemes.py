"""Unit tests for the five PRF access schemes and their MAFs."""

import math

import numpy as np
import pytest

from repro.core.exceptions import SchemeError
from repro.core.patterns import PatternKind
from repro.core.schemes import (
    SCHEME_SPECS,
    Scheme,
    all_schemes,
    flat_module_assignment,
    module_assignment,
    schemes_supporting,
    spec,
    validate_lane_grid,
)


class TestModuleAssignment:
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_scalar_output_types(self, scheme):
        if scheme is Scheme.ReTr:
            p, q = 2, 4
        else:
            p, q = 3, 5
        mv, mh = module_assignment(scheme, 7, 11, p, q)
        assert isinstance(mv, int) and isinstance(mh, int)
        assert 0 <= mv < p and 0 <= mh < q

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_array_matches_scalar(self, scheme):
        p, q = 2, 4
        ii, jj = np.mgrid[0:10, 0:10]
        mv, mh = module_assignment(scheme, ii, jj, p, q)
        for i in range(10):
            for j in range(10):
                smv, smh = module_assignment(scheme, i, j, p, q)
                assert (mv[i, j], mh[i, j]) == (smv, smh)

    def test_reo_formula(self):
        assert module_assignment(Scheme.ReO, 5, 7, 2, 4) == (1, 3)

    def test_rero_row_wraps_vertically(self):
        # moving q columns right shifts the bank row by one
        p, q = 2, 4
        mv0, _ = module_assignment(Scheme.ReRo, 0, 0, p, q)
        mv1, _ = module_assignment(Scheme.ReRo, 0, q, p, q)
        assert (mv0 + 1) % p == mv1

    def test_reco_column_wraps_horizontally(self):
        p, q = 2, 4
        _, mh0 = module_assignment(Scheme.ReCo, 0, 0, p, q)
        _, mh1 = module_assignment(Scheme.ReCo, p, 0, p, q)
        assert (mh0 + 1) % q == mh1

    def test_retr_mirror_formula_for_tall_grids(self):
        # q | p: mirrored formula is used
        mv, mh = module_assignment(Scheme.ReTr, 3, 2, 4, 2)
        assert (mv, mh) == ((3 + 2) % 4, 2 % 2)

    def test_retr_rejects_coprime_grid(self):
        with pytest.raises(SchemeError):
            module_assignment(Scheme.ReTr, 0, 0, 3, 5)

    def test_flat_assignment_range(self):
        p, q = 2, 8
        ii, jj = np.mgrid[0:32, 0:32]
        for scheme in all_schemes():
            flat = flat_module_assignment(scheme, ii, jj, p, q)
            assert flat.min() >= 0 and flat.max() < p * q
            # all banks are used somewhere
            assert len(np.unique(flat)) == p * q

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_periodicity(self, scheme):
        """Every MAF is periodic with period p*q in both coordinates."""
        p, q = 2, 4
        n = p * q
        for i in range(n):
            for j in range(n):
                base = module_assignment(scheme, i, j, p, q)
                assert module_assignment(scheme, i + n, j, p, q) == base
                assert module_assignment(scheme, i, j + n, p, q) == base

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_negative_coordinates_periodic(self, scheme):
        p, q = 2, 4
        n = p * q
        assert module_assignment(scheme, -3, -5, p, q) == module_assignment(
            scheme, -3 + 10 * n, -5 + 10 * n, p, q
        )


class TestSchemeSpecs:
    def test_all_schemes_order(self):
        assert [s.value for s in all_schemes()] == [
            "ReO",
            "ReRo",
            "ReCo",
            "RoCo",
            "ReTr",
        ]

    def test_spec_lookup_by_name(self):
        assert spec("RoCo").scheme is Scheme.RoCo
        with pytest.raises(SchemeError):
            spec("NoSuchScheme")

    def test_table1_rero(self):
        s = SCHEME_SPECS[Scheme.ReRo]
        kinds = set(s.pattern_kinds(2, 4))
        assert kinds == {
            PatternKind.RECTANGLE,
            PatternKind.ROW,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        }

    def test_table1_reco(self):
        s = SCHEME_SPECS[Scheme.ReCo]
        kinds = set(s.pattern_kinds(2, 4))
        assert kinds == {
            PatternKind.RECTANGLE,
            PatternKind.COLUMN,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        }

    def test_table1_roco(self):
        s = SCHEME_SPECS[Scheme.RoCo]
        kinds = set(s.pattern_kinds(2, 4))
        assert kinds == {
            PatternKind.ROW,
            PatternKind.COLUMN,
            PatternKind.RECTANGLE,
        }

    def test_table1_retr(self):
        s = SCHEME_SPECS[Scheme.ReTr]
        assert set(s.pattern_kinds(2, 4)) == {
            PatternKind.RECTANGLE,
            PatternKind.TRANSPOSED_RECTANGLE,
        }

    def test_diagonal_gcd_conditions(self):
        # ReRo main diagonal requires gcd(p, q+1) == 1: fails for p=3, q=5
        s = SCHEME_SPECS[Scheme.ReRo]
        assert not s.supports(PatternKind.MAIN_DIAGONAL, 3, 5)
        assert s.supports(PatternKind.MAIN_DIAGONAL, 2, 4)
        # ReO diagonals only for coprime grids
        assert SCHEME_SPECS[Scheme.ReO].supports(PatternKind.MAIN_DIAGONAL, 3, 5)
        assert not SCHEME_SPECS[Scheme.ReO].supports(PatternKind.MAIN_DIAGONAL, 2, 4)

    def test_roco_rectangle_anchor_constraint(self):
        s = SCHEME_SPECS[Scheme.RoCo]
        assert s.supports(PatternKind.RECTANGLE, 2, 4, anchor=(0, 3))
        assert s.supports(PatternKind.RECTANGLE, 2, 4, anchor=(4, 1))
        assert not s.supports(PatternKind.RECTANGLE, 2, 4, anchor=(1, 0))

    def test_schemes_supporting(self):
        got = schemes_supporting([PatternKind.ROW, PatternKind.COLUMN], 2, 4)
        assert got == [Scheme.RoCo]
        got = schemes_supporting([PatternKind.RECTANGLE], 2, 4)
        assert Scheme.ReO in got and Scheme.ReRo in got

    def test_schemes_supporting_excludes_invalid_retr_grid(self):
        got = schemes_supporting([PatternKind.RECTANGLE], 3, 5)
        assert Scheme.ReTr not in got

    def test_validate_lane_grid(self):
        validate_lane_grid(Scheme.ReO, 2, 4)
        with pytest.raises(SchemeError):
            validate_lane_grid(Scheme.ReO, 0, 4)
        with pytest.raises(SchemeError):
            validate_lane_grid(Scheme.ReTr, 3, 4)

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_description_nonempty(self, scheme):
        assert SCHEME_SPECS[scheme].description


class TestConflictFreedomBySpec:
    """The static spec's claims hold on every paper lane grid (ground truth
    via direct bank enumeration; the exhaustive version lives in
    test_conflict.py)."""

    @pytest.mark.parametrize("p,q", [(2, 4), (2, 8)])
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_claimed_patterns_are_conflict_free_at_origin(self, scheme, p, q):
        from repro.core.conflict import is_conflict_free

        for entry in SCHEME_SPECS[scheme].supported:
            if not entry.condition_holds(p, q):
                continue
            assert is_conflict_free(scheme, entry.kind, 0, p * q, p, q), (
                scheme,
                entry.kind,
            )

    def test_gcd_condition_matches_math(self):
        for p, q in [(2, 4), (2, 8), (3, 5), (4, 4), (3, 4)]:
            e = SCHEME_SPECS[Scheme.ReRo].entry_for(PatternKind.MAIN_DIAGONAL)
            assert e.condition_holds(p, q) == (math.gcd(p, q + 1) == 1)
