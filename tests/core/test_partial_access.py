"""Tests for partial (masked) parallel accesses."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import AddressError, ConflictError, PatternError, PortError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


@pytest.fixture
def pm():
    mem = PolyMem(PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo))
    m = np.arange(mem.rows * mem.cols, dtype=np.uint64).reshape(mem.rows, mem.cols)
    mem.load(m)
    return mem, m


class TestReadPartial:
    def test_prefix_of_full_access(self, pm):
        mem, m = pm
        full = mem.read(PatternKind.ROW, 2, 0)
        part = mem.read_partial(PatternKind.ROW, 2, 0, count=5)
        assert (part == full[:5]).all()

    def test_ragged_row_tail(self, pm):
        """A short access fits where the full row would run off the edge."""
        mem, m = pm
        j = mem.cols - 3
        with pytest.raises(AddressError):
            mem.read(PatternKind.ROW, 0, j)
        part = mem.read_partial(PatternKind.ROW, 0, j, count=3)
        assert (part == m[0, j:]).all()

    def test_single_element(self, pm):
        mem, m = pm
        assert mem.read_partial(PatternKind.ROW, 4, 7, count=1)[0] == m[4, 7]

    def test_count_validation(self, pm):
        mem, _ = pm
        with pytest.raises(PatternError):
            mem.read_partial(PatternKind.ROW, 0, 0, count=0)
        with pytest.raises(PatternError):
            mem.read_partial(PatternKind.ROW, 0, 0, count=9)

    def test_port_validation(self, pm):
        mem, _ = pm
        with pytest.raises(PortError):
            mem.read_partial(PatternKind.ROW, 0, 0, count=2, port=1)

    def test_partial_of_unsupported_pattern_may_work(self, pm):
        """A 2-element column prefix is conflict-free under ReRo even
        though the full 8-element column is not."""
        mem, m = pm
        with pytest.raises(ConflictError):
            mem.read(PatternKind.COLUMN, 0, 0)
        part = mem.read_partial(PatternKind.COLUMN, 0, 0, count=2)
        assert (part == m[:2, 0]).all()

    def test_partial_conflict_still_rejected(self, pm):
        """3 column elements hit bank row 0 twice under ReRo (p=2)."""
        mem, _ = pm
        with pytest.raises(ConflictError):
            mem.read_partial(PatternKind.COLUMN, 0, 0, count=3)

    def test_cycle_accounting(self, pm):
        mem, _ = pm
        mem.reset_stats()
        mem.read_partial(PatternKind.ROW, 0, 0, count=3)
        assert mem.cycles == 1
        assert mem.read_stats[0].elements == 3


class TestWritePartial:
    def test_writes_only_touched_lanes(self, pm):
        mem, m = pm
        mem.write_partial(PatternKind.ROW, 1, 2, np.array([7, 8, 9]))
        row = mem.read(PatternKind.ROW, 1, 0)
        assert row[2:5].tolist() == [7, 8, 9]
        assert row[0] == m[1, 0] and row[5] == m[1, 5]

    def test_ragged_tail_write(self, pm):
        mem, _ = pm
        j = mem.cols - 2
        mem.write_partial(PatternKind.ROW, 0, j, np.array([1, 2]))
        assert mem.dump()[0, j:].tolist() == [1, 2]

    def test_shape_validation(self, pm):
        mem, _ = pm
        with pytest.raises(PatternError):
            mem.write_partial(PatternKind.ROW, 0, 0, np.zeros((2, 2)))

    def test_conflicting_partial_write_rejected(self, pm):
        mem, _ = pm
        with pytest.raises(ConflictError):
            mem.write_partial(PatternKind.COLUMN, 0, 0, np.arange(4))

    def test_stats(self, pm):
        mem, _ = pm
        mem.reset_stats()
        mem.write_partial(PatternKind.ROW, 0, 0, np.arange(6))
        assert mem.write_stats.elements == 6
        assert mem.cycles == 1
