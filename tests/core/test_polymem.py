"""Unit + behavioural tests for the PolyMem facade."""

import numpy as np
import pytest

from repro.core.agu import AccessRequest
from repro.core.exceptions import ConflictError, PatternError, PortError
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme

from ..conftest import make_polymem


class TestLoadDump:
    def test_roundtrip_all_schemes(self):
        for scheme in Scheme:
            pm = make_polymem(scheme)
            m = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(
                pm.rows, pm.cols
            )
            pm.load(m)
            assert (pm.dump() == m).all(), scheme

    def test_load_shape_check(self, small_polymem):
        with pytest.raises(PatternError):
            small_polymem.load(np.zeros((3, 3)))

    def test_dump_every_port(self):
        pm = make_polymem(Scheme.ReRo, read_ports=3)
        m = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
        pm.load(m)
        for port in range(3):
            assert (pm.dump(port) == m).all()


class TestReads:
    def test_row_matches_matrix(self, loaded_polymem):
        pm, m = loaded_polymem
        for i in range(pm.rows):
            for j in range(0, pm.cols - pm.lanes + 1, 3):
                assert (pm.read(PatternKind.ROW, i, j) == m[i, j : j + 8]).all()

    def test_rectangle_matches_matrix(self, loaded_polymem):
        pm, m = loaded_polymem
        got = pm.read(PatternKind.RECTANGLE, 3, 7)
        assert (got == m[3:5, 7:11].ravel()).all()

    def test_main_diagonal(self, loaded_polymem):
        pm, m = loaded_polymem
        got = pm.read(PatternKind.MAIN_DIAGONAL, 2, 5)
        want = m[np.arange(2, 10), np.arange(5, 13)]
        assert (got == want).all()

    def test_anti_diagonal(self, loaded_polymem):
        pm, m = loaded_polymem
        got = pm.read(PatternKind.ANTI_DIAGONAL, 0, 10)
        want = m[np.arange(0, 8), 10 - np.arange(0, 8)]
        assert (got == want).all()

    def test_unsupported_pattern_raises_conflict(self, loaded_polymem):
        pm, _ = loaded_polymem
        with pytest.raises(ConflictError) as ei:
            pm.read(PatternKind.COLUMN, 0, 0)
        assert "does not support" in str(ei.value)
        assert ei.value.banks

    def test_misaligned_anchor_message(self):
        pm = make_polymem(Scheme.RoCo)
        with pytest.raises(ConflictError, match="constraint"):
            pm.read(PatternKind.RECTANGLE, 1, 2)

    def test_bad_port(self, loaded_polymem):
        pm, _ = loaded_polymem
        with pytest.raises(PortError):
            pm.read(PatternKind.ROW, 0, 0, port=1)


class TestWrites:
    def test_write_then_read_same_pattern(self, small_polymem):
        pm = small_polymem
        v = np.arange(50, 58, dtype=np.uint64)
        pm.write(PatternKind.ROW, 2, 4, v)
        assert (pm.read(PatternKind.ROW, 2, 4) == v).all()

    def test_write_one_pattern_read_another(self, small_polymem):
        """The multiview property: data written as rectangles is readable as
        rows — the whole point of PolyMem."""
        pm = small_polymem
        m = np.zeros((pm.rows, pm.cols), dtype=np.uint64)
        val = 1
        for i in range(0, pm.rows, 2):
            for j in range(0, pm.cols, 4):
                block = np.arange(val, val + 8, dtype=np.uint64)
                pm.write(PatternKind.RECTANGLE, i, j, block)
                m[i : i + 2, j : j + 4] = block.reshape(2, 4)
                val += 8
        for i in range(pm.rows):
            got = pm.read(PatternKind.ROW, i, 8)
            assert (got == m[i, 8:16]).all()

    def test_write_value_count_check(self, small_polymem):
        with pytest.raises(PatternError):
            small_polymem.write(PatternKind.ROW, 0, 0, np.arange(7))

    def test_write_conflict_rejected(self, small_polymem):
        with pytest.raises(ConflictError):
            small_polymem.write(PatternKind.COLUMN, 0, 0, np.arange(8))


class TestConcurrentStep:
    def test_read_write_same_cycle(self, loaded_polymem):
        pm, m = loaded_polymem
        before = pm.cycles
        out = pm.step(
            reads=[(0, AccessRequest(PatternKind.ROW, 0, 0))],
            write=(AccessRequest(PatternKind.ROW, 0, 0), np.arange(8)),
        )
        assert pm.cycles == before + 1
        # read sees pre-write data (independent ports)
        assert (out[0] == m[0, :8]).all()
        assert (pm.read(PatternKind.ROW, 0, 0) == np.arange(8)).all()

    def test_multiple_read_ports_same_cycle(self):
        pm = make_polymem(Scheme.ReRo, read_ports=2)
        m = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
        pm.load(m)
        out = pm.step(
            reads=[
                (0, AccessRequest(PatternKind.ROW, 0, 0)),
                (1, AccessRequest(PatternKind.ROW, 1, 0)),
            ]
        )
        assert (out[0] == m[0, :8]).all()
        assert (out[1] == m[1, :8]).all()
        assert pm.cycles == 1

    def test_same_port_twice_rejected(self, small_polymem):
        reqs = [
            (0, AccessRequest(PatternKind.ROW, 0, 0)),
            (0, AccessRequest(PatternKind.ROW, 1, 0)),
        ]
        with pytest.raises(PortError):
            small_polymem.step(reads=reqs)

    def test_stats_accounting(self, loaded_polymem):
        pm, _ = loaded_polymem
        pm.reset_stats()
        pm.read(PatternKind.ROW, 0, 0)
        pm.write(PatternKind.ROW, 0, 0, np.arange(8))
        assert pm.read_stats[0].accesses == 1
        assert pm.read_stats[0].elements == 8
        assert pm.write_stats.accesses == 1
        assert pm.cycles == 2


class TestBatchPath:
    def test_batch_equals_single_reads(self, loaded_polymem):
        pm, m = loaded_polymem
        anchors_i = np.arange(8)
        anchors_j = np.full(8, 4)
        batch = pm.read_batch(PatternKind.ROW, anchors_i, anchors_j)
        for k in range(8):
            assert (batch[k] == pm.read(PatternKind.ROW, k, 4)).all()

    def test_batch_write_equals_single(self):
        pm1 = make_polymem(Scheme.ReRo)
        pm2 = make_polymem(Scheme.ReRo)
        anchors_i = np.arange(0, 8, 2)
        anchors_j = np.zeros(4, int)
        vals = np.arange(32, dtype=np.uint64).reshape(4, 8)
        pm1.write_batch(PatternKind.RECTANGLE, anchors_i, anchors_j, vals)
        for k in range(4):
            pm2.write(PatternKind.RECTANGLE, int(anchors_i[k]), 0, vals[k])
        assert (pm1.dump() == pm2.dump()).all()

    def test_batch_conflict_detected(self, small_polymem):
        with pytest.raises(ConflictError, match="not conflict-free"):
            small_polymem.read_batch(
                PatternKind.COLUMN, np.array([0]), np.array([0])
            )

    def test_batch_conflict_check_skippable(self, loaded_polymem):
        pm, _ = loaded_polymem
        # with check=False a conflicting access silently reads garbage —
        # the caller's responsibility; it must not raise.
        pm.read_batch(PatternKind.COLUMN, np.array([0]), np.array([0]), check=False)

    def test_batch_cycle_accounting(self, loaded_polymem):
        pm, _ = loaded_polymem
        pm.reset_stats()
        pm.read_batch(PatternKind.ROW, np.arange(4), np.zeros(4, int))
        assert pm.cycles == 4
        assert pm.read_stats[0].elements == 32

    def test_batch_values_shape_check(self, small_polymem):
        with pytest.raises(PatternError):
            small_polymem.write_batch(
                PatternKind.ROW, np.array([0]), np.array([0]), np.zeros((2, 8))
            )

    def test_batch_port_check(self, loaded_polymem):
        pm, _ = loaded_polymem
        with pytest.raises(PortError):
            pm.read_batch(PatternKind.ROW, np.array([0]), np.array([0]), port=3)


class TestMultiPortReplication:
    def test_bram_level_storage_scales_with_ports(self):
        pm1 = make_polymem(Scheme.ReRo, read_ports=1)
        pm4 = make_polymem(Scheme.ReRo, read_ports=4)
        assert pm4.banks.stored_bytes == 4 * pm1.banks.stored_bytes
        assert pm4.banks.capacity_bytes == pm1.banks.capacity_bytes

    def test_write_visible_on_all_ports(self):
        pm = make_polymem(Scheme.ReRo, read_ports=4)
        pm.write(PatternKind.ROW, 0, 0, np.arange(8))
        for port in range(4):
            assert (pm.read(PatternKind.ROW, 0, 0, port=port) == np.arange(8)).all()
