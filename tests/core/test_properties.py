"""Hypothesis property-based tests for the PolyMem core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import AddressingFunction
from repro.core.banks import BankArray
from repro.core.config import PolyMemConfig
from repro.core.conflict import is_conflict_free
from repro.core.patterns import AccessPattern, PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import (
    SCHEME_SPECS,
    Scheme,
    flat_module_assignment,
    module_assignment,
)
from repro.core.shuffle import BenesNetwork, InverseShuffle, Shuffle

# -- strategies ---------------------------------------------------------------

lane_grids = st.sampled_from([(2, 2), (2, 4), (2, 8), (4, 2), (4, 4)])
schemes = st.sampled_from(list(Scheme))
coords = st.integers(min_value=0, max_value=512)


@st.composite
def scheme_and_grid(draw):
    p, q = draw(lane_grids)
    s = draw(schemes)
    # every sampled grid satisfies p|q or q|p, so ReTr is always legal
    return s, p, q


# -- MAF invariants ------------------------------------------------------------


@given(scheme_and_grid(), coords, coords)
def test_maf_output_in_range(sg, i, j):
    s, p, q = sg
    mv, mh = module_assignment(s, i, j, p, q)
    assert 0 <= mv < p and 0 <= mh < q


@given(scheme_and_grid(), coords, coords)
def test_maf_periodicity(sg, i, j):
    """MAFs are periodic with period p*q in each coordinate."""
    s, p, q = sg
    n = p * q
    assert module_assignment(s, i, j, p, q) == module_assignment(
        s, i + n, j + n, p, q
    )


@given(scheme_and_grid(), coords, coords)
def test_aligned_rectangle_always_conflict_free(sg, bi, bj):
    """A p x q block at a block-aligned anchor is conflict-free under every
    scheme — the invariant the load/dump path relies on."""
    s, p, q = sg
    assert is_conflict_free(s, PatternKind.RECTANGLE, bi * p, bj * q, p, q)


@given(scheme_and_grid(), coords, coords)
def test_spec_claims_imply_conflict_freedom(sg, i, j):
    """Whatever the static table claims conflict-free IS conflict-free —
    soundness of SchemeSpec at arbitrary anchors."""
    s, p, q = sg
    spec = SCHEME_SPECS[s]
    for entry in spec.supported:
        if not entry.condition_holds(p, q):
            continue
        kind = entry.kind
        ii, jj = i, j
        if kind is PatternKind.ANTI_DIAGONAL:
            jj = j + p * q  # keep coordinates non-negative
        if not entry.anchor_ok(ii, jj, p, q):
            continue
        assert is_conflict_free(s, kind, ii, jj, p, q), (s, kind, ii, jj)


# -- shuffle invariants -------------------------------------------------------


@given(st.permutations(list(range(8))), st.lists(st.integers(0, 2**32), min_size=8, max_size=8))
def test_inverse_shuffle_inverts(perm, values):
    perm = np.array(perm)
    v = np.array(values, dtype=np.uint64)
    sh, inv = Shuffle(8), InverseShuffle(8)
    assert (inv(sh(v, perm), perm) == v).all()
    assert (sh(inv(v, perm), perm) == v).all()


@given(st.permutations(list(range(16))))
@settings(max_examples=50)
def test_benes_routes_any_permutation(perm):
    perm = np.array(perm)
    v = np.arange(16)
    bn = BenesNetwork(16)
    out = np.empty(16, int)
    out[perm] = v
    assert (bn(v, perm) == out).all()


# -- storage invariants --------------------------------------------------------


@given(
    scheme_and_grid(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_storage_bijection(sg, row_blocks, col_blocks):
    """bank x address slots biject onto logical elements for any space."""
    s, p, q = sg
    rows, cols = row_blocks * p, col_blocks * q
    a = AddressingFunction(rows, cols, p, q)
    ii, jj = np.mgrid[0:rows, 0:cols]
    banks = flat_module_assignment(s, ii, jj, p, q)
    keys = banks.ravel() * a.bank_depth + a(ii, jj).ravel()
    assert len(np.unique(keys)) == rows * cols


@given(
    st.integers(min_value=1, max_value=4),
    st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 15), st.integers(0, 2**30)
        ),
        max_size=30,
    ),
)
def test_bank_replicas_always_consistent(ports, ops):
    banks = BankArray(num_banks=8, bank_depth=16, read_ports=ports)
    for b, a, v in ops:
        banks.write(np.array([b]), np.array([a]), np.array([v]))
    assert banks.replicas_consistent()


# -- end-to-end memory semantics -------------------------------------------------


@st.composite
def polymem_and_ops(draw):
    scheme = draw(st.sampled_from([Scheme.ReRo, Scheme.ReCo, Scheme.RoCo]))
    cfg = PolyMemConfig(4 * 1024, p=2, q=4, scheme=scheme)
    spec = SCHEME_SPECS[scheme]
    kinds = [
        e.kind
        for e in spec.supported
        if e.condition_holds(2, 4) and e.anchor_constraint == "any"
    ]
    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(kinds))
        pat = AccessPattern(kind, 2, 4)
        h, w = pat.shape
        # choose an in-bounds anchor (shape fits in 16 x 32 default space)
        i = draw(st.integers(0, 16 - h))
        if kind is PatternKind.ANTI_DIAGONAL:
            j = draw(st.integers(7, 31))
        else:
            j = draw(st.integers(0, 32 - w))
        is_write = draw(st.booleans())
        vals = draw(st.integers(0, 2**20)) if is_write else None
        ops.append((kind, i, j, is_write, vals))
    return cfg, ops


@given(polymem_and_ops())
@settings(max_examples=60, deadline=None)
def test_polymem_matches_reference_matrix(arg):
    """PolyMem behaves exactly like a plain 2-D array under any sequence of
    supported parallel reads/writes — the fundamental correctness property."""
    cfg, ops = arg
    pm = PolyMem(cfg)
    ref = np.zeros((pm.rows, pm.cols), dtype=np.uint64)
    for k, (kind, i, j, is_write, seed) in enumerate(ops):
        pat = AccessPattern(kind, 2, 4)
        ii, jj = pat.coordinates(i, j)
        if is_write:
            vals = (np.arange(8, dtype=np.uint64) + seed) * (k + 1)
            pm.write(kind, i, j, vals)
            ref[ii, jj] = vals
        else:
            assert (pm.read(kind, i, j) == ref[ii, jj]).all()
    assert (pm.dump() == ref).all()
