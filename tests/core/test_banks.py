"""Unit tests for the replicated bank array."""

import numpy as np
import pytest

from repro.core.banks import BankArray
from repro.core.exceptions import AddressError, ConfigurationError, PortError


@pytest.fixture
def banks():
    return BankArray(num_banks=8, bank_depth=16, read_ports=2)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BankArray(0, 16)
        with pytest.raises(ConfigurationError):
            BankArray(8, 0)
        with pytest.raises(ConfigurationError):
            BankArray(8, 16, read_ports=0)

    def test_capacity_accounting(self, banks):
        assert banks.words_per_replica == 128
        assert banks.capacity_bytes == 128 * 8
        assert banks.stored_bytes == 2 * 128 * 8  # replication doubles storage


class TestReadWrite:
    def test_roundtrip(self, banks):
        b = np.arange(8)
        a = np.full(8, 3)
        v = np.arange(100, 108)
        banks.write(b, a, v)
        assert (banks.read(0, b, a) == v).all()
        assert (banks.read(1, b, a) == v).all()

    def test_write_broadcasts_to_all_replicas(self, banks):
        banks.write(np.array([0]), np.array([0]), np.array([7]))
        assert banks.replicas_consistent()

    def test_port_bounds(self, banks):
        with pytest.raises(PortError):
            banks.read(2, np.array([0]), np.array([0]))
        with pytest.raises(PortError):
            banks.read(-1, np.array([0]), np.array([0]))

    def test_address_bounds(self, banks):
        with pytest.raises(AddressError):
            banks.write(np.array([8]), np.array([0]), np.array([1]))
        with pytest.raises(AddressError):
            banks.write(np.array([0]), np.array([16]), np.array([1]))
        with pytest.raises(AddressError):
            banks.read(0, np.array([0]), np.array([-1]))

    def test_shape_mismatch(self, banks):
        with pytest.raises(AddressError):
            banks.write(np.arange(3), np.arange(4), np.arange(4))

    def test_2d_indexing(self, banks):
        b = np.tile(np.arange(8), (3, 1))
        a = np.arange(3)[:, None] * np.ones(8, int)
        v = np.arange(24).reshape(3, 8)
        banks.write(b, a, v)
        assert (banks.read(0, b, a) == v).all()

    def test_empty_access_is_noop(self, banks):
        banks.write(np.array([], int), np.array([], int), np.array([], int))
        assert (banks.snapshot() == 0).all()

    def test_dtype_cast(self, banks):
        banks.write(np.array([1]), np.array([1]), np.array([3.0]))
        assert banks.read(0, np.array([1]), np.array([1]))[0] == 3
        assert banks.read(0, np.array([1]), np.array([1])).dtype == np.uint64


class TestBulkOps:
    def test_fill_and_snapshot(self, banks):
        data = np.arange(128, dtype=np.uint64).reshape(8, 16)
        banks.fill(data)
        assert (banks.snapshot(0) == data).all()
        assert (banks.snapshot(1) == data).all()

    def test_fill_shape_check(self, banks):
        with pytest.raises(AddressError):
            banks.fill(np.zeros((8, 15)))

    def test_snapshot_is_a_copy(self, banks):
        snap = banks.snapshot()
        snap[0, 0] = 99
        assert banks.read(0, np.array([0]), np.array([0]))[0] == 0

    def test_snapshot_port_bounds(self, banks):
        with pytest.raises(PortError):
            banks.snapshot(5)

    def test_clear(self, banks):
        banks.write(np.array([1]), np.array([1]), np.array([9]))
        banks.clear()
        assert (banks.snapshot() == 0).all()

    def test_replica_consistency_after_random_ops(self, banks, rng):
        for _ in range(50):
            n = rng.integers(1, 8)
            b = rng.choice(8, n, replace=False)
            a = rng.integers(0, 16, n)
            banks.write(b, a, rng.integers(0, 1000, n))
        assert banks.replicas_consistent()
