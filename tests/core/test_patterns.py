"""Unit tests for access-pattern shapes and offset generation."""

import pytest

from repro.core.exceptions import PatternError
from repro.core.patterns import (
    AccessPattern,
    PatternKind,
    kinds_in_table_order,
    pattern_offsets,
)


class TestPatternOffsets:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_lane_count(self, kind):
        di, dj = pattern_offsets(kind, 2, 4)
        assert di.shape == dj.shape == (8,)

    def test_rectangle_order_row_major(self):
        di, dj = pattern_offsets(PatternKind.RECTANGLE, 2, 4)
        assert di.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert dj.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_transposed_rectangle_is_qxp(self):
        di, dj = pattern_offsets(PatternKind.TRANSPOSED_RECTANGLE, 2, 4)
        assert di.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert dj.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_row_and_column(self):
        di, dj = pattern_offsets(PatternKind.ROW, 2, 4)
        assert (di == 0).all() and dj.tolist() == list(range(8))
        di, dj = pattern_offsets(PatternKind.COLUMN, 2, 4)
        assert (dj == 0).all() and di.tolist() == list(range(8))

    def test_diagonals(self):
        di, dj = pattern_offsets(PatternKind.MAIN_DIAGONAL, 2, 4)
        assert (di == dj).all()
        di, dj = pattern_offsets(PatternKind.ANTI_DIAGONAL, 2, 4)
        assert (di == -dj).all()

    def test_offsets_are_readonly_and_cached(self):
        a1, _ = pattern_offsets(PatternKind.ROW, 2, 4)
        a2, _ = pattern_offsets(PatternKind.ROW, 2, 4)
        assert a1 is a2
        with pytest.raises(ValueError):
            a1[0] = 99

    def test_invalid_grid(self):
        with pytest.raises(PatternError):
            pattern_offsets(PatternKind.ROW, 0, 4)


class TestAccessPattern:
    def test_lanes(self):
        assert AccessPattern(PatternKind.ROW, 2, 8).lanes == 16

    def test_invalid_grid_raises(self):
        with pytest.raises(PatternError):
            AccessPattern(PatternKind.ROW, -1, 4)

    def test_coordinates_anchor_shift(self):
        pat = AccessPattern(PatternKind.RECTANGLE, 2, 4)
        ii, jj = pat.coordinates(10, 20)
        assert ii.min() == 10 and jj.min() == 20
        assert ii.max() == 11 and jj.max() == 23

    @pytest.mark.parametrize(
        "kind,shape",
        [
            (PatternKind.RECTANGLE, (2, 4)),
            (PatternKind.TRANSPOSED_RECTANGLE, (4, 2)),
            (PatternKind.ROW, (1, 8)),
            (PatternKind.COLUMN, (8, 1)),
            (PatternKind.MAIN_DIAGONAL, (8, 8)),
            (PatternKind.ANTI_DIAGONAL, (8, 8)),
        ],
    )
    def test_bounding_shape(self, kind, shape):
        assert AccessPattern(kind, 2, 4).shape == shape

    def test_fits(self):
        pat = AccessPattern(PatternKind.RECTANGLE, 2, 4)
        assert pat.fits(0, 0, rows=2, cols=4)
        assert not pat.fits(1, 0, rows=2, cols=4)
        assert not pat.fits(0, 1, rows=2, cols=4)

    def test_anti_diagonal_fits_needs_left_space(self):
        pat = AccessPattern(PatternKind.ANTI_DIAGONAL, 2, 4)
        assert pat.fits(0, 7, rows=8, cols=8)
        assert not pat.fits(0, 6, rows=8, cols=8)

    def test_cover_cells(self):
        pat = AccessPattern(PatternKind.ROW, 2, 2)
        cells = pat.cover_cells(1, 2)
        assert cells == frozenset({(1, 2), (1, 3), (1, 4), (1, 5)})

    def test_bounds(self):
        pat = AccessPattern(PatternKind.ANTI_DIAGONAL, 2, 2)
        assert pat.bounds(0, 3) == (0, 3, 0, 3)

    def test_str(self):
        assert "rectangle" in str(AccessPattern(PatternKind.RECTANGLE, 2, 4))


def test_kinds_in_table_order_complete():
    assert set(kinds_in_table_order()) == set(PatternKind)
    assert len(kinds_in_table_order()) == 6
