"""Tests for runtime scheme reconfiguration (paper §II-A polymorphism)."""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.exceptions import ConflictError, SchemeError
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


@pytest.fixture
def loaded():
    pm = PolyMem(PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo))
    m = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(pm.rows, pm.cols)
    pm.load(m)
    return pm, m


class TestReconfigure:
    def test_contents_preserved(self, loaded):
        pm, m = loaded
        pm.reconfigure(Scheme.ReCo)
        assert (pm.dump() == m).all()

    def test_new_patterns_become_available(self, loaded):
        pm, m = loaded
        with pytest.raises(ConflictError):
            pm.read(PatternKind.COLUMN, 0, 0)
        pm.reconfigure(Scheme.ReCo)
        col = pm.read(PatternKind.COLUMN, 0, 3)
        assert (col == m[:8, 3]).all()

    def test_old_patterns_can_disappear(self, loaded):
        pm, _ = loaded
        pm.read(PatternKind.ROW, 0, 0)  # fine under ReRo
        pm.reconfigure(Scheme.ReO)
        with pytest.raises(ConflictError):
            pm.read(PatternKind.ROW, 0, 0)

    def test_cost_is_one_write_per_block(self, loaded):
        pm, _ = loaded
        before = pm.cycles
        cost = pm.reconfigure(Scheme.RoCo)
        assert cost == (pm.rows // 2) * (pm.cols // 4)
        assert pm.cycles == before + cost

    def test_noop_is_free(self, loaded):
        pm, _ = loaded
        assert pm.reconfigure(Scheme.ReRo) == 0

    def test_scheme_name_accepted(self, loaded):
        pm, m = loaded
        pm.reconfigure("ReTr")
        assert pm.scheme is Scheme.ReTr
        assert pm.config.scheme is Scheme.ReTr
        assert (pm.dump() == m).all()

    def test_invalid_grid_rejected(self):
        pm = PolyMem(PolyMemConfig(15 * KB * 8 // 8, p=3, q=5, scheme=Scheme.ReO,
                                   rows=24, cols=80))
        with pytest.raises(SchemeError):
            pm.reconfigure(Scheme.ReTr)

    def test_chained_reconfigurations(self, loaded):
        pm, m = loaded
        for scheme in (Scheme.ReO, Scheme.ReCo, Scheme.RoCo, Scheme.ReTr, Scheme.ReRo):
            pm.reconfigure(scheme)
            assert (pm.dump() == m).all(), scheme

    def test_banks_actually_remapped(self, loaded):
        """The physical layout changes: bank contents differ across
        schemes even though the logical contents are identical."""
        pm, _ = loaded
        before = pm.banks.snapshot()
        pm.reconfigure(Scheme.RoCo)
        after = pm.banks.snapshot()
        assert not (before == after).all()
