"""Tests for the reproduction scorecard."""

import pytest

from repro.experiments import ExperimentRow, render_report, run_all


@pytest.fixture(scope="module")
def rows():
    return run_all()


class TestScorecard:
    def test_every_check_passes(self, rows):
        failing = [r for r in rows if not r.ok]
        assert not failing, failing

    def test_covers_every_experiment(self, rows):
        experiments = {r.experiment for r in rows}
        assert {"Table I", "Table IV", "Fig. 4", "Fig. 5", "Fig. 6",
                "Fig. 7", "Fig. 8", "Fig. 10", "§IV-A"} <= experiments

    def test_report_renders(self, rows):
        text = render_report(rows)
        assert "SCORECARD" in text
        assert "PASS" in text
        assert f"{len(rows)}/{len(rows)} checks passed" in text

    def test_report_marks_failures(self):
        rows = [
            ExperimentRow("X", "q", "1", "2", False),
            ExperimentRow("X", "r", "1", "1", True),
        ]
        text = render_report(rows)
        assert "[FAIL] q" in text and "[PASS] r" in text
        assert "1/2 checks passed" in text

    def test_cli_command(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        assert "14/14" in capsys.readouterr().out or "checks passed" in str(
            capsys
        )
