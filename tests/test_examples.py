"""Every example script runs to completion (and its assertions pass)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

#: examples that sweep the full paper-size design space / arrays
SLOW = {"dse_explore.py", "stream_copy.py"}


@pytest.mark.parametrize(
    "script", [e for e in EXAMPLES if e.name not in SLOW], ids=lambda p: p.name
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


@pytest.mark.parametrize(
    "script", [e for e in EXAMPLES if e.name in SLOW], ids=lambda p: p.name
)
def test_slow_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_example_inventory():
    """The deliverable floor: a quickstart plus domain scenarios."""
    names = {e.name for e in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
