# Convenience targets for the MAX-PolyMem reproduction.

.PHONY: install test bench scorecard examples clean

install:
	python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

scorecard:
	python -m repro experiments

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
